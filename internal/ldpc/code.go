// Package ldpc implements the repo's second ECC family: a rate-
// compatible quasi-cyclic LDPC codec with systematic encoding and
// normalized min-sum decoding, hard- and soft-input. It is the
// soft-decision endgame the recovery literature converges on (Cai et
// al., arXiv:1805.02819; Luo, arXiv:1808.04016): when hard re-reads at
// shifted references stop helping, multi-sense per-bit confidence fed
// to a soft-input iterative decoder recovers roughly another order of
// magnitude of raw bit errors.
//
// # Construction
//
// Each capability level is a systematic quasi-cyclic irregular
// repeat-accumulate (QC-IRA) code sharing the page geometry: k = 32768
// message bits plus m parity bits, m growing with the level (the "rate
// index"). The parity-check matrix is H = [A | T]:
//
//   - A is quasi-cyclic with circulant size Z = 64: every message
//     block-column connects to WC distinct check block-rows through
//     cyclically shifted identity blocks, the (row, shift) pairs drawn
//     from a deterministic hash — column weight WC, one shared field-
//     free structure per level;
//   - T is the dual-diagonal accumulator: parity bit i participates in
//     checks i and i+1. That staircase makes systematic encoding a
//     prefix-XOR (O(n), no matrix inversion) while keeping H sparse —
//     the defining LDPC property min-sum needs.
//
// Z = 64 aligns circulant rows with machine words: encoding and the
// per-iteration syndrome check are word-parallel rotate-XOR streams, so
// the clean-page fast path (syndrome already zero) costs one pass over
// the codeword, mirroring the BCH decoder's early termination.
package ldpc

import (
	"errors"
	"fmt"
	"hash/crc64"
	"math/bits"
)

// ErrUncorrectable is returned when min-sum fails to converge on a
// valid codeword (or refuses a convergence that looks like a
// miscorrection). The codeword is left unmodified.
var ErrUncorrectable = errors.New("ldpc: uncorrectable codeword")

// Z is the circulant size; one machine word per circulant row keeps the
// encoder and syndrome kernels word-parallel.
const Z = 64

// WC is the message column weight: every message bit participates in
// exactly WC parity checks. Column weight 4 is the flash-LDPC
// standard: at these very high rates it buys substantially better
// minimum distance (miscorrection resistance) and a harder decoding
// cliff than weight 3, at ~30% more edge work per iteration.
const WC = 4

// crcBits is the embedded integrity word: every codeword carries a
// CRC64 of the host message INSIDE the LDPC-protected extent (one
// extra block-column), so honest channel errors on the CRC are
// corrected like any other bit while a min-sum convergence onto a
// wrong codeword — possible for any iterative decoder pushed past its
// rating — fails the CRC and is reported uncorrectable instead of
// returned as data. This is the detect-layer real LDPC controllers
// pair with the decoder; it is what makes the family safe to put
// behind the ladder's "decode success means correct data" contract.
const crcBits = 64

// crcTable is the ECMA CRC64 table (built once; Checksum is
// allocation-free).
var crcTable = crc64.MakeTable(crc64.ECMA)

// Params describes a rate-compatible codec: one message geometry, one
// parity footprint per capability level (ascending), and the calibrated
// correction capabilities the reliability model keys on.
type Params struct {
	// K is the protected message length in bits (a multiple of Z·8).
	K int
	// ParityBits holds the parity length of each level, ascending; each
	// must be a positive multiple of Z and of 8.
	ParityBits []int
	// HardCap and SoftCap are the calibrated per-level correction
	// capabilities (raw bit errors per codeword the hard-input and
	// soft-input decodes reliably repair). Conservative by design:
	// the iterative decoder's true cliff sits well above them.
	HardCap []int
	SoftCap []int
}

// Validate rejects malformed parameter sets.
func (p Params) Validate() error {
	if p.K <= 0 || p.K%Z != 0 {
		return fmt.Errorf("ldpc: message length %d not a positive multiple of %d", p.K, Z)
	}
	if len(p.ParityBits) == 0 {
		return fmt.Errorf("ldpc: no capability levels")
	}
	if len(p.HardCap) != len(p.ParityBits) || len(p.SoftCap) != len(p.ParityBits) {
		return fmt.Errorf("ldpc: capability tables (%d hard, %d soft) do not cover %d levels",
			len(p.HardCap), len(p.SoftCap), len(p.ParityBits))
	}
	prev := 0
	for i, m := range p.ParityBits {
		if m <= 0 || m%Z != 0 {
			return fmt.Errorf("ldpc: level %d parity %d not a positive multiple of %d", i, m, Z)
		}
		if m <= prev {
			return fmt.Errorf("ldpc: parity lengths not ascending at level %d", i)
		}
		if m/Z < WC {
			return fmt.Errorf("ldpc: level %d parity %d has fewer than %d block-rows", i, m, WC)
		}
		prev = m
	}
	return nil
}

// PageParams returns the paper-geometry instantiation: k = 4 KB page =
// 32768 bits, six rate levels whose spare footprint (8 B CRC + 64 B up
// to 216 B of parity) shares the BCH spare-area budget of 224 B, with
// capability tables calibrated against the package's own decoder (see
// TestCalibratedCaps).
func PageParams() Params {
	return Params{
		K:          32768,
		ParityBits: []int{512, 768, 1024, 1280, 1536, 1728},
		HardCap:    pageHardCap,
		SoftCap:    pageSoftCap,
	}
}

// Calibrated correction capabilities of the page geometry, measured by
// Monte-Carlo sweeps of this decoder (TestCalibratedCaps re-verifies
// them with margin on every run): the highest error weights at which
// random patterns decode reliably every time, derated ~25-30% for
// safety and forced monotone across levels. Soft input buys ~3-5x over
// hard input — the multi-sense confidence flags most erroneous bits as
// weak, so only the "confidently wrong" residue behaves like hard
// errors — which compounds with the reference-shift ladder into the
// order-of-magnitude recovery the literature reports.
var (
	pageHardCap = []int{10, 20, 32, 40, 56, 72}
	pageSoftCap = []int{24, 60, 110, 170, 240, 300}
)

// blockEdge is one circulant block of the A part: the message
// block-column connects check block-row Row with cyclic shift Shift.
type blockEdge struct {
	Row   uint16
	Shift uint16
}

// code is one built level: the QC structure, its flat adjacency for
// min-sum and the word-parallel tables for encode/syndrome.
type code struct {
	kHost   int // host message bits (the 4 KB page)
	k, m, n int // protected message (host + CRC), parity, codeword bits
	level   int

	// blocks[j] lists the WC circulant blocks of message block-column j.
	blocks [][WC]blockEdge

	// Flat check adjacency for min-sum: checkVar[checkStart[c]:
	// checkStart[c+1]] are the codeword bit indices of check c.
	checkStart []int32
	checkVar   []int32
	edges      int
}

// deltaGuard is the exclusion radius around a used shift delta: new
// placements on the same block-row pair must differ by more than this
// many circulant positions, so no two columns' checks land within
// deltaGuard accumulator steps of each other on a shared row pair.
const deltaGuard = 3

// rotr is a right rotation (RotateLeft with negated count, named for
// the encoder's readability).
func rotr(w uint64, n int) uint64 { return bits.RotateLeft64(w, -n) }

// guardMask returns the Z-bit window of deltas excluded around d.
func guardMask(d int) uint64 {
	m := uint64(0)
	for o := -deltaGuard; o <= deltaGuard; o++ {
		m |= 1 << uint((d+o+Z)%Z)
	}
	return m
}

// splitmix is the deterministic hash behind the QC structure: one
// avalanche round of SplitMix64, seeded per (level, column, slot).
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// buildCode constructs level lvl of the parameter set. The structure is
// deterministic but engineered, not merely hashed: block-rows are
// assigned by a least-loaded heuristic (near-regular check degrees
// decode measurably better than hash-lucky ones), and circulant shifts
// are chosen greedily to avoid length-4 cycles — two block-columns
// sharing two block-rows with equal shift difference close a 4-cycle in
// every circulant position at once, the dominant failure mode of random
// QC constructions. High-rate levels cannot avoid all collisions (the
// delta classes saturate); the greedy walk then minimises them.
func buildCode(p Params, lvl int) *code {
	m := p.ParityBits[lvl]
	pb := m / Z
	kExt := p.K + crcBits // the CRC word is one more protected block-column
	cols := kExt / Z
	c := &code{kHost: p.K, k: kExt, m: m, n: kExt + m, level: lvl}
	c.blocks = make([][WC]blockEdge, cols)

	rowLoad := make([]int, pb)
	// usedDelta[r1*pb+r2] is a Z-bit mask of the shift differences
	// already spent on the block-row pair (r1 < r2).
	usedDelta := make([]uint64, pb*pb)
	for j := 0; j < cols; j++ {
		var rows [WC]int
		var shifts [WC]int
		for i := 0; i < WC; i++ {
			// Seeded by the parity geometry (not the level index), so a
			// code is identified by its footprint alone and re-slicing
			// the level table never reshuffles existing matrices.
			h := splitmix(uint64(m)<<40 ^ uint64(j)<<8 ^ uint64(i))

			// Least-loaded row within the slot's stratum, hash as
			// tie-break, never adjacent to the previous slot's row.
			// Stratifying each column's rows across the check space —
			// with at least one full circulant block between consecutive
			// picks — keeps its WC check anchors ≥ Z+1 accumulator
			// positions apart for every bit of the block-column. The
			// accumulator turns those gaps into parity weight, so no
			// single column can form the low-weight codewords that make
			// an iterative decoder miscorrect.
			sLo := i * pb / WC
			sHi := (i + 1) * pb / WC
			row, best := -1, int(^uint(0)>>1)
			for r := sLo; r < sHi; r++ {
				cand := sLo + (r-sLo+int(h>>12))%(sHi-sLo)
				// Avoid adjacent block-rows across consecutive slots when
				// the stratum is big enough to afford it (two-block
				// strata would degenerate): adjacency lets a column's
				// check gap shrink to one accumulator step.
				if i > 0 && sHi-sLo >= 3 && cand-rows[i-1] < 2 {
					continue
				}
				if rowLoad[cand] < best {
					row, best = cand, rowLoad[cand]
				}
			}
			if row < 0 {
				row = sHi - 1 // stratum exhausted by the adjacency rule
			}
			rows[i] = row
			rowLoad[row]++

			// Greedy shift: prefer a candidate whose deltas against the
			// column's earlier blocks stay clear of every used delta's
			// guard band; otherwise the candidate with the fewest
			// near-collisions. An exact delta repeat closes a 4-cycle; a
			// delta within ±deltaGuard of a used one puts two columns'
			// checks a few accumulator positions apart, which the
			// staircase converts into a low-weight codeword — the
			// miscorrection seed the guard band exists to kill.
			base := int((h >> 24) % Z)
			bestShift, bestColl := base, int(^uint(0)>>1)
			for probe := 0; probe < Z; probe++ {
				s := (base + probe) % Z
				coll := 0
				for k := 0; k < i; k++ {
					r1, r2, d := rows[k], row, (shifts[k]-s+Z)%Z
					if r1 > r2 {
						r1, r2, d = r2, r1, (Z-d)%Z
					}
					if usedDelta[r1*pb+r2]&guardMask(d) != 0 {
						coll++
					}
				}
				if coll < bestColl {
					bestShift, bestColl = s, coll
				}
				if coll == 0 {
					break
				}
			}
			shifts[i] = bestShift
			for k := 0; k < i; k++ {
				r1, r2, d := rows[k], row, (shifts[k]-bestShift+Z)%Z
				if r1 > r2 {
					r1, r2, d = r2, r1, (Z-d)%Z
				}
				usedDelta[r1*pb+r2] |= 1 << uint(d)
			}
			c.blocks[j][i] = blockEdge{Row: uint16(row), Shift: uint16(bestShift)}
		}
	}
	c.buildAdjacency()
	return c
}

// buildAdjacency flattens H into the per-check variable lists min-sum
// traverses, via a counting sort over check indices.
func (c *code) buildAdjacency() {
	deg := make([]int32, c.m)
	for _, col := range c.blocks {
		for _, be := range col {
			base := int(be.Row) * Z
			for z := 0; z < Z; z++ {
				deg[base+(z+int(be.Shift))%Z]++
			}
		}
	}
	for i := 0; i < c.m; i++ {
		deg[i]++ // parity bit i in check i
		if i+1 < c.m {
			deg[i+1]++ // ... and in check i+1
		}
	}
	c.checkStart = make([]int32, c.m+1)
	for i := 0; i < c.m; i++ {
		c.checkStart[i+1] = c.checkStart[i] + deg[i]
	}
	c.edges = int(c.checkStart[c.m])
	c.checkVar = make([]int32, c.edges)
	fill := make([]int32, c.m)
	copy(fill, c.checkStart[:c.m])
	put := func(check, v int) {
		c.checkVar[fill[check]] = int32(v)
		fill[check]++
	}
	for j, col := range c.blocks {
		for _, be := range col {
			base := int(be.Row) * Z
			for z := 0; z < Z; z++ {
				put(base+(z+int(be.Shift))%Z, j*Z+z)
			}
		}
	}
	for i := 0; i < c.m; i++ {
		put(i, c.k+i)
		if i+1 < c.m {
			put(i+1, c.k+i)
		}
	}
}

// msgSyndrome accumulates the A-part contribution of the packed message
// words into s (len m/Z), word-parallel: one rotate-XOR per circulant
// block. Message bit j·Z+z occupies bit 63-z of word j (big-endian,
// MSB-first byte order — the repo's bit convention).
func (c *code) msgSyndrome(s []uint64, mw []uint64) {
	for i := range s {
		s[i] = 0
	}
	for j, col := range c.blocks {
		w := mw[j]
		if w == 0 {
			continue
		}
		for _, be := range col {
			s[be.Row] ^= bits.RotateLeft64(w, -int(be.Shift))
		}
	}
}

// syndromeZero reports whether the full parity check H·cw = 0 holds for
// hard decisions given as packed words (message words then parity
// words). Check i = (A·msg)_i ⊕ p_{i-1} ⊕ p_i.
func (c *code) syndromeZero(cw []uint64, scratch []uint64) bool {
	pw := cw[c.k/Z:]
	c.msgSyndrome(scratch, cw[:c.k/Z])
	var carry uint64 // p_{i-1} crossing a word boundary: LSB of the previous word
	for r := range scratch {
		prev := pw[r] >> 1
		if carry != 0 {
			prev |= 1 << 63
		}
		if scratch[r]^pw[r]^prev != 0 {
			return false
		}
		carry = pw[r] & 1
	}
	return true
}
