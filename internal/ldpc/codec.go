package ldpc

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"xlnand/internal/ecc"
	"xlnand/internal/stats"
)

// HWConfig captures the micro-architectural parameters of the modelled
// min-sum decoder — a row-layered engine streaming check-node updates
// through parallel compare-select units — mirroring the way bch.HWConfig
// decouples architectural latency from software speed.
type HWConfig struct {
	// EdgeParallelism is the number of edge messages the check-node
	// pipeline absorbs per cycle.
	EdgeParallelism int
	// BitParallelism is the codeword bits per cycle of the syndrome /
	// hard-decision repack passes.
	BitParallelism int
	// AvgItersHard / AvgItersSoft are the modelled mean iteration counts
	// of a converging decode (hard input converges in fewer, better-
	// conditioned soft input pays more iterations for far more errors).
	AvgItersHard float64
	AvgItersSoft float64
	// PipelineFillCyc is the fixed fill/drain overhead per decode.
	PipelineFillCyc int
	// ClockHz is the decoder clock (the codec block's 80 MHz domain).
	ClockHz float64
}

// DefaultHWConfig returns the calibration the latency figures use:
// 64 edges/cycle, 128 bits/cycle, 80 MHz — sized so the LDPC hard
// decode lands in the same band as the worst-case BCH decode while the
// soft decode visibly pays for its extra iterations.
func DefaultHWConfig() HWConfig {
	return HWConfig{
		EdgeParallelism: 64,
		BitParallelism:  128,
		AvgItersHard:    8,
		AvgItersSoft:    14,
		PipelineFillCyc: 32,
		ClockHz:         80e6,
	}
}

// Codec is the adaptive rate-compatible LDPC codec: one engine whose
// capability level (rate index) is selectable at runtime, levels built
// lazily and published through atomic slots so dies hammering the
// shared codec never serialise on a mutex — the same concurrency
// contract as the BCH codec.
type Codec struct {
	p  Params
	hw HWConfig

	mu       sync.Mutex // serialises slot construction only
	codes    []atomic.Pointer[code]
	decoders []atomic.Pointer[Decoder]
	// measured holds the per-level iterations-to-converge calibration
	// tables backing MeasuredDecodeLatency, built lazily like the codes.
	measured []atomic.Pointer[measuredTable]
}

// NewCodec builds a codec from the parameter set.
func NewCodec(p Params, hw HWConfig) (*Codec, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.ParityBits[len(p.ParityBits)-1]/Z > maxParityWords {
		return nil, fmt.Errorf("ldpc: deepest level needs %d parity words, max %d",
			p.ParityBits[len(p.ParityBits)-1]/Z, maxParityWords)
	}
	return &Codec{
		p:        p,
		hw:       hw,
		codes:    make([]atomic.Pointer[code], len(p.ParityBits)),
		decoders: make([]atomic.Pointer[Decoder], len(p.ParityBits)),
		measured: make([]atomic.Pointer[measuredTable], len(p.ParityBits)),
	}, nil
}

// NewPageCodec builds the 4 KB-page codec (six rate levels, 72-224 B
// spare footprint including the embedded CRC) with the default hardware
// model.
func NewPageCodec() (*Codec, error) { return NewCodec(PageParams(), DefaultHWConfig()) }

// Levels returns the number of capability levels.
func (c *Codec) Levels() int { return len(c.p.ParityBits) }

// Family implements ecc.Codec.
func (c *Codec) Family() ecc.Family { return ecc.FamilyLDPC }

// DataBits implements ecc.Codec.
func (c *Codec) DataBits() int { return c.p.K }

// MinLevel implements ecc.Codec.
func (c *Codec) MinLevel() int { return 0 }

// MaxLevel implements ecc.Codec.
func (c *Codec) MaxLevel() int { return len(c.p.ParityBits) - 1 }

// ClampLevel implements ecc.Codec.
func (c *Codec) ClampLevel(level int) int {
	if level < 0 {
		return 0
	}
	if level > c.MaxLevel() {
		return c.MaxLevel()
	}
	return level
}

func (c *Codec) slot(level int) (int, error) {
	if level < 0 || level > c.MaxLevel() {
		return 0, fmt.Errorf("ldpc: level %d outside [0, %d]", level, c.MaxLevel())
	}
	return level, nil
}

// codeAt returns (building if needed) the level's code structure.
func (c *Codec) codeAt(level int) (*code, error) {
	i, err := c.slot(level)
	if err != nil {
		return nil, err
	}
	if cd := c.codes[i].Load(); cd != nil {
		return cd, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cd := c.codes[i].Load(); cd != nil {
		return cd, nil
	}
	cd := buildCode(c.p, i)
	c.codes[i].Store(cd)
	return cd, nil
}

func (c *Codec) decoder(level int) (*Decoder, error) {
	i, err := c.slot(level)
	if err != nil {
		return nil, err
	}
	if d := c.decoders[i].Load(); d != nil {
		return d, nil
	}
	cd, err := c.codeAt(level)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if d := c.decoders[i].Load(); d != nil {
		return d, nil
	}
	d := newDecoder(cd)
	c.decoders[i].Store(d)
	return d, nil
}

// ParityBytes implements ecc.Codec.
func (c *Codec) ParityBytes(level int) (int, error) {
	i, err := c.slot(level)
	if err != nil {
		return 0, err
	}
	return (crcBits + c.p.ParityBits[i]) / 8, nil
}

// LevelForSpare implements ecc.Codec: parity footprints are strictly
// ascending, so the stored spare length names its level exactly.
func (c *Codec) LevelForSpare(spareBytes int) (int, error) {
	for i, m := range c.p.ParityBits {
		if (crcBits+m)/8 == spareBytes {
			return i, nil
		}
	}
	return 0, fmt.Errorf("ldpc: spare %d bytes maps to no rate level", spareBytes)
}

// CodewordBits implements ecc.Codec.
func (c *Codec) CodewordBits(level int) (int, error) {
	i, err := c.slot(level)
	if err != nil {
		return 0, err
	}
	return c.p.K + crcBits + c.p.ParityBits[i], nil
}

// CorrectionCap implements ecc.Codec: the calibrated hard-input
// capability.
func (c *Codec) CorrectionCap(level int) int {
	return c.p.HardCap[c.ClampLevel(level)]
}

// SoftCorrectionCap is the calibrated soft-input capability of a level —
// the family-specific descriptor the experiments and the soft UBER
// model build on.
func (c *Codec) SoftCorrectionCap(level int) int {
	return c.p.SoftCap[c.ClampLevel(level)]
}

// EncodeInto implements ecc.Codec.
func (c *Codec) EncodeInto(level int, parity, msg []byte) error {
	cd, err := c.codeAt(level)
	if err != nil {
		return err
	}
	return cd.encodeInto(parity, msg)
}

// Decode implements ecc.Codec: hard-input normalized min-sum.
func (c *Codec) Decode(level int, codeword []byte) (int, error) {
	d, err := c.decoder(level)
	if err != nil {
		return 0, err
	}
	if len(codeword)*8 != d.c.n {
		return 0, fmt.Errorf("ldpc: codeword %d bytes, level %d needs %d bits", len(codeword), level, d.c.n)
	}
	return d.decode(codeword, nil, maxIterHard, flipGuard(c.p.HardCap[d.c.level]))
}

// flipGuard is the accepted repair bound: 1.5x the calibrated cap.
// Rated repairs always pass; wildly outsized "convergences" are cut
// before the CRC pass even looks at them. The guard is a plausibility
// pre-filter — the embedded CRC64 is the authoritative miscorrection
// verdict — so it can afford headroom for beyond-rating rescues on the
// deep-retry path.
func flipGuard(cap int) int { return cap + cap/2 }

// DecodeSoft implements ecc.Codec: soft-input min-sum over the
// device-supplied per-bit confidence.
func (c *Codec) DecodeSoft(level int, codeword []byte, llr []int8) (int, error) {
	d, err := c.decoder(level)
	if err != nil {
		return 0, err
	}
	if len(codeword)*8 != d.c.n {
		return 0, fmt.Errorf("ldpc: codeword %d bytes, level %d needs %d bits", len(codeword), level, d.c.n)
	}
	if len(llr) < d.c.n {
		return 0, fmt.Errorf("ldpc: %d LLRs for a %d-bit codeword", len(llr), d.c.n)
	}
	return d.decode(codeword, llr[:d.c.n], maxIterSoft, flipGuard(c.p.SoftCap[d.c.level]))
}

// SupportsSoft implements ecc.Codec.
func (c *Codec) SupportsSoft() bool { return true }

// logUBER is the family's reliability model: the calibrated capability
// turns the iterative decoder into an effective bounded-distance code,
// and the post-correction rate is the binomial tail past it — the same
// shape the BCH model uses, with the cap measured instead of algebraic.
func (c *Codec) logUBER(level, cap int, rber float64) float64 {
	if rber <= 0 {
		return math.Inf(-1)
	}
	if rber >= 1 {
		rber = 1 - 1e-15
	}
	n := c.p.K + crcBits + c.p.ParityBits[level]
	return stats.LogBinomTail(n, cap+1, rber) - math.Log(float64(n))
}

// ProjectedUBER implements ecc.Codec (hard-decision path).
func (c *Codec) ProjectedUBER(level int, rber float64) float64 {
	i := c.ClampLevel(level)
	return math.Exp(c.logUBER(i, c.p.HardCap[i], rber))
}

// SoftProjectedUBER is the soft-decision counterpart: the post-
// correction rate when the read pays the multi-sense soft path.
func (c *Codec) SoftProjectedUBER(level int, rber float64) float64 {
	i := c.ClampLevel(level)
	return math.Exp(c.logUBER(i, c.p.SoftCap[i], rber))
}

// RequiredLevel implements ecc.Codec: the smallest rate index whose
// hard-decision tail meets the target.
func (c *Codec) RequiredLevel(rber, targetUBER float64) (int, error) {
	if targetUBER <= 0 || targetUBER >= 1 {
		return 0, fmt.Errorf("ldpc: UBER target %g outside (0,1)", targetUBER)
	}
	logTarget := math.Log(targetUBER)
	for i := range c.p.ParityBits {
		if c.logUBER(i, c.p.HardCap[i], rber) <= logTarget {
			return i, nil
		}
	}
	return 0, fmt.Errorf("ldpc: no rate level meets UBER %g at RBER %g", targetUBER, rber)
}

// edgeCount returns the level's Tanner-graph edge count (the unit of
// min-sum iteration work).
func (c *Codec) edgeCount(level int) int {
	m := c.p.ParityBits[level]
	return WC*(c.p.K+crcBits) + 2*m - 1
}

func (c *Codec) toDuration(cycles float64) time.Duration {
	return time.Duration(cycles / c.hw.ClockHz * float64(time.Second))
}

// EncodeLatency implements ecc.Codec: the accumulator encoder streams
// the message once at the bit-parallel width.
func (c *Codec) EncodeLatency(level int) time.Duration {
	i := c.ClampLevel(level)
	n := float64(c.p.K + crcBits + c.p.ParityBits[i])
	return c.toDuration(n/float64(c.hw.BitParallelism) + float64(c.hw.PipelineFillCyc))
}

// DecodeLatency implements ecc.Codec. A clean codeword terminates after
// the initial syndrome pass (the early-termination check); a dirty one
// pays the modelled mean iteration count over the edge pipeline.
func (c *Codec) DecodeLatency(level int, clean bool) time.Duration {
	i := c.ClampLevel(level)
	n := float64(c.p.K + crcBits + c.p.ParityBits[i])
	cycles := n/float64(c.hw.BitParallelism) + float64(c.hw.PipelineFillCyc)
	if !clean {
		perIter := float64(c.edgeCount(i))/float64(c.hw.EdgeParallelism) + n/float64(c.hw.BitParallelism)
		cycles += c.hw.AvgItersHard * perIter
	}
	return c.toDuration(cycles)
}

// SoftDecodeLatency implements ecc.Codec.
func (c *Codec) SoftDecodeLatency(level int) time.Duration {
	i := c.ClampLevel(level)
	n := float64(c.p.K + crcBits + c.p.ParityBits[i])
	perIter := float64(c.edgeCount(i))/float64(c.hw.EdgeParallelism) + n/float64(c.hw.BitParallelism)
	return c.toDuration(n/float64(c.hw.BitParallelism) + float64(c.hw.PipelineFillCyc) +
		c.hw.AvgItersSoft*perIter)
}

// Warm implements ecc.Codec.
func (c *Codec) Warm(level int) error {
	_, err := c.decoder(level)
	return err
}

var _ ecc.Codec = (*Codec)(nil)
