package ldpc

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
)

// encodeInto computes the spare block of msg (exactly kHost/8 bytes)
// into parity: the embedded CRC64 first, then the systematic LDPC
// parity of the extended message (msg ‖ crc) — s = A·msg' word-parallel
// followed by the accumulator's prefix-XOR p_i = s_i ⊕ p_{i-1}.
// Allocation-free: the syndrome scratch lives on the stack
// (maxParityWords bounds it) and the CRC table is package-global.
func (c *code) encodeInto(parity, msg []byte) error {
	if len(msg)*8 != c.kHost {
		return fmt.Errorf("ldpc: message %d bytes, code protects %d bits", len(msg), c.kHost)
	}
	if len(parity)*8 != crcBits+c.m {
		return fmt.Errorf("ldpc: parity buffer %d bytes, level needs %d", len(parity), (crcBits+c.m)/8)
	}
	crc := crc64.Checksum(msg, crcTable)
	binary.BigEndian.PutUint64(parity[:8], crc)

	var sbuf [maxParityWords]uint64
	s := sbuf[:c.m/Z]
	for i := range s {
		s[i] = 0
	}
	// Inline A·msg' over the message bytes plus the CRC word (packed on
	// the fly so the encoder needs no message-word scratch).
	hostWords := c.kHost / Z
	for j, col := range c.blocks {
		var w uint64
		if j < hostWords {
			w = binary.BigEndian.Uint64(msg[j*8:])
		} else {
			w = crc
		}
		if w == 0 {
			continue
		}
		for _, be := range col {
			s[be.Row] ^= rotr(w, int(be.Shift))
		}
	}

	// Prefix-XOR along the bit sequence (bit i sits at position 63-i of
	// its word, so the in-word prefix runs MSB→LSB via right shifts; the
	// carry is the previous word's last bit, flipping the whole next
	// word when set).
	carry := uint64(0)
	for r := range s {
		x := s[r]
		x ^= x >> 1
		x ^= x >> 2
		x ^= x >> 4
		x ^= x >> 8
		x ^= x >> 16
		x ^= x >> 32
		x ^= carry // all-ones when the previous word ended on parity 1
		s[r] = x
		carry = -(x & 1) // 0 or ^uint64(0)
	}
	for r := range s {
		binary.BigEndian.PutUint64(parity[8+r*8:], s[r])
	}
	return nil
}

// crcOK verifies the embedded CRC64 of a codeword image (msg ‖ crc ‖
// parity, byte-packed).
func (c *code) crcOK(cw []byte) bool {
	hostBytes := c.kHost / 8
	return crc64.Checksum(cw[:hostBytes], crcTable) ==
		binary.BigEndian.Uint64(cw[hostBytes:])
}

// maxParityWords bounds the on-stack encoder/syndrome scratch; the
// deepest page-geometry level uses 27 words (1728 parity bits).
const maxParityWords = 64
