package ldpc

import (
	"bytes"
	"errors"
	"testing"

	"xlnand/internal/stats"
)

// testRig returns the page codec plus helpers shared by the tests.
func testRig(t testing.TB) *Codec {
	t.Helper()
	c, err := NewPageCodec()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// makeCodeword encodes a seeded random message at level, returning the
// codeword (msg ++ parity).
func makeCodeword(t testing.TB, c *Codec, level int, seed uint64) []byte {
	t.Helper()
	rng := stats.NewRNG(seed)
	msg := make([]byte, c.DataBits()/8)
	for i := range msg {
		msg[i] = byte(rng.Intn(256))
	}
	pb, err := c.ParityBytes(level)
	if err != nil {
		t.Fatal(err)
	}
	cw := make([]byte, len(msg)+pb)
	copy(cw, msg)
	if err := c.EncodeInto(level, cw[len(msg):], msg); err != nil {
		t.Fatal(err)
	}
	return cw
}

// flip injects nerr distinct bit errors drawn from the seeded stream.
func flip(cw []byte, nerr int, rng *stats.RNG) []int {
	pos := rng.SampleK(len(cw)*8, nerr)
	for _, p := range pos {
		cw[p/8] ^= 1 << uint(7-p%8)
	}
	return pos
}

// softLLR builds the device-model confidence for the corrupted codeword:
// signs from the hard decisions, error positions weak with the default
// capture probability, plus false-weak noise.
func softLLR(cw []byte, errPos []int, rng *stats.RNG) []int8 {
	nbits := len(cw) * 8
	llr := make([]int8, nbits)
	for i := 0; i < nbits; i++ {
		if cw[i/8]&(1<<uint(7-i%8)) == 0 {
			llr[i] = 7
		} else {
			llr[i] = -7
		}
	}
	weaken := func(p int) {
		if llr[p] > 0 {
			llr[p] = 1
		} else {
			llr[p] = -1
		}
	}
	for _, p := range errPos {
		if rng.Bernoulli(0.92) {
			weaken(p)
		}
	}
	for _, p := range rng.SampleK(nbits, rng.Binomial(nbits, 0.015)) {
		weaken(p)
	}
	return llr
}

// TestCleanRoundtrip: every level encodes and decodes an uncorrupted
// codeword with zero corrections (the early-termination fast path).
func TestCleanRoundtrip(t *testing.T) {
	c := testRig(t)
	for lvl := 0; lvl <= c.MaxLevel(); lvl++ {
		cw := makeCodeword(t, c, lvl, uint64(77+lvl))
		want := append([]byte(nil), cw...)
		n, err := c.Decode(lvl, cw)
		if err != nil || n != 0 {
			t.Fatalf("level %d: clean decode (n=%d, err=%v)", lvl, n, err)
		}
		if !bytes.Equal(cw, want) {
			t.Fatalf("level %d: clean decode modified the codeword", lvl)
		}
	}
}

// TestCalibratedCaps re-verifies the committed capability tables: at the
// calibrated cap every seeded trial decodes exactly, hard and soft —
// the tables are measurements of this decoder, and this test is what
// keeps them honest when the construction or the decoder changes.
func TestCalibratedCaps(t *testing.T) {
	c := testRig(t)
	const trials = 8
	for lvl := 0; lvl <= c.MaxLevel(); lvl++ {
		for _, soft := range []bool{false, true} {
			cap := c.CorrectionCap(lvl)
			if soft {
				cap = c.SoftCorrectionCap(lvl)
			}
			for s := uint64(0); s < trials; s++ {
				rng := stats.NewRNG(4200 + s*31 + uint64(lvl)*977)
				cw := makeCodeword(t, c, lvl, 4200+s*31+uint64(lvl)*977)
				want := append([]byte(nil), cw...)
				pos := flip(cw, cap, rng)
				var n int
				var err error
				if soft {
					n, err = c.DecodeSoft(lvl, cw, softLLR(cw, pos, rng))
				} else {
					n, err = c.Decode(lvl, cw)
				}
				if err != nil {
					t.Fatalf("level %d soft=%v: decode failed at calibrated cap %d (trial %d): %v",
						lvl, soft, cap, s, err)
				}
				if n != cap {
					t.Fatalf("level %d soft=%v: corrected %d of %d", lvl, soft, n, cap)
				}
				if !bytes.Equal(cw, want) {
					t.Fatalf("level %d soft=%v: decode did not restore the codeword", lvl, soft)
				}
			}
		}
	}
}

// TestErrorMatrix plays the conformance error weights {1, cap/2, cap}
// per level and pins exact restoration; beyond the flip guard the
// decode must fail with the codeword rolled back untouched.
func TestErrorMatrix(t *testing.T) {
	c := testRig(t)
	for lvl := 0; lvl <= c.MaxLevel(); lvl++ {
		cap := c.CorrectionCap(lvl)
		for _, nerr := range []int{1, cap / 2, cap} {
			rng := stats.NewRNG(900 + uint64(lvl*131+nerr))
			cw := makeCodeword(t, c, lvl, 900+uint64(lvl*131+nerr))
			want := append([]byte(nil), cw...)
			flip(cw, nerr, rng)
			n, err := c.Decode(lvl, cw)
			if err != nil || n != nerr || !bytes.Equal(cw, want) {
				t.Fatalf("level %d nerr %d: n=%d err=%v equal=%v", lvl, nerr, n, err, bytes.Equal(cw, want))
			}
		}
		// Far past the guard: failure with rollback, never silent data.
		rng := stats.NewRNG(1700 + uint64(lvl))
		cw := makeCodeword(t, c, lvl, 1700+uint64(lvl))
		flip(cw, 3*cap, rng)
		dirty := append([]byte(nil), cw...)
		if _, err := c.Decode(lvl, cw); err == nil {
			t.Fatalf("level %d: decode of %d errors succeeded past the flip guard", lvl, 3*cap)
		} else if !errors.Is(err, ErrUncorrectable) {
			t.Fatalf("level %d: wrong failure type %v", lvl, err)
		}
		if !bytes.Equal(cw, dirty) {
			t.Fatalf("level %d: failed decode modified the codeword", lvl)
		}
	}
}

// TestSoftBeatsHard: at every level there is an error weight the hard
// decode refuses and the soft decode repairs exactly — the reason the
// family exists.
func TestSoftBeatsHard(t *testing.T) {
	c := testRig(t)
	for lvl := 0; lvl <= c.MaxLevel(); lvl++ {
		nerr := c.SoftCorrectionCap(lvl)
		if nerr <= c.CorrectionCap(lvl) {
			t.Fatalf("level %d: soft cap %d not above hard cap %d", lvl, nerr, c.CorrectionCap(lvl))
		}
		rng := stats.NewRNG(3100 + uint64(lvl))
		cw := makeCodeword(t, c, lvl, 3100+uint64(lvl))
		want := append([]byte(nil), cw...)
		pos := flip(cw, nerr, rng)
		llr := softLLR(cw, pos, rng)
		hardCopy := append([]byte(nil), cw...)
		if _, err := c.Decode(lvl, hardCopy); err == nil {
			t.Fatalf("level %d: hard decode repaired %d errors (soft cap); hard cap %d is far too conservative",
				lvl, nerr, c.CorrectionCap(lvl))
		}
		n, err := c.DecodeSoft(lvl, cw, llr)
		if err != nil || n != nerr || !bytes.Equal(cw, want) {
			t.Fatalf("level %d: soft decode of %d errors: n=%d err=%v", lvl, nerr, n, err)
		}
	}
}

// TestLevelGeometry pins the spare-footprint contract: ParityBytes is
// strictly ascending and LevelForSpare inverts it exactly; unknown
// spare sizes are rejected.
func TestLevelGeometry(t *testing.T) {
	c := testRig(t)
	prev := 0
	for lvl := 0; lvl <= c.MaxLevel(); lvl++ {
		pb, err := c.ParityBytes(lvl)
		if err != nil {
			t.Fatal(err)
		}
		if pb <= prev {
			t.Fatalf("parity bytes not ascending at level %d", lvl)
		}
		prev = pb
		got, err := c.LevelForSpare(pb)
		if err != nil || got != lvl {
			t.Fatalf("LevelForSpare(%d) = %d, %v; want %d", pb, got, err, lvl)
		}
	}
	if _, err := c.LevelForSpare(13); err == nil {
		t.Fatal("bogus spare size accepted")
	}
	if _, err := c.ParityBytes(c.MaxLevel() + 1); err == nil {
		t.Fatal("out-of-range level accepted")
	}
}

// TestRequiredLevelMonotone: the level solver returns ascending levels
// for ascending RBER and errors out once no level meets the target.
func TestRequiredLevelMonotone(t *testing.T) {
	c := testRig(t)
	prev := 0
	for _, rber := range []float64{1e-6, 1e-5, 5e-5, 1e-4, 3e-4, 6e-4} {
		lvl, err := c.RequiredLevel(rber, 1e-11)
		if err != nil {
			t.Fatalf("RBER %g: %v", rber, err)
		}
		if lvl < prev {
			t.Fatalf("RequiredLevel not monotone: %d after %d at RBER %g", lvl, prev, rber)
		}
		prev = lvl
	}
	if _, err := c.RequiredLevel(0.05, 1e-11); err == nil {
		t.Fatal("impossible target accepted")
	}
	// The projected UBER at the selected level must meet the target.
	lvl, err := c.RequiredLevel(2e-4, 1e-11)
	if err != nil {
		t.Fatal(err)
	}
	if u := c.ProjectedUBER(lvl, 2e-4); u > 1e-11 {
		t.Fatalf("selected level %d projects UBER %.3e above target", lvl, u)
	}
}

// TestLatencyDescriptors pins the architectural ordering: clean decode
// is the cheapest, dirty hard decode costs more, soft decode the most;
// encode latency is level-insensitive to first order but never zero.
func TestLatencyDescriptors(t *testing.T) {
	c := testRig(t)
	for lvl := 0; lvl <= c.MaxLevel(); lvl++ {
		clean := c.DecodeLatency(lvl, true)
		dirty := c.DecodeLatency(lvl, false)
		soft := c.SoftDecodeLatency(lvl)
		if clean <= 0 || !(clean < dirty && dirty < soft) {
			t.Fatalf("level %d: latency ordering clean=%v dirty=%v soft=%v", lvl, clean, dirty, soft)
		}
		if c.EncodeLatency(lvl) <= 0 {
			t.Fatalf("level %d: zero encode latency", lvl)
		}
	}
}

// TestDecodeAllocs pins the pooled scratch: steady-state decode of an
// errored codeword allocates nothing, hard or soft.
func TestDecodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	c := testRig(t)
	lvl := c.MaxLevel()
	cap := c.CorrectionCap(lvl)
	rng := stats.NewRNG(5000)
	cw := makeCodeword(t, c, lvl, 5000)
	clean := append([]byte(nil), cw...)
	pos := flip(cw, cap/2, rng)
	dirty := append([]byte(nil), cw...)
	llr := softLLR(cw, pos, rng)
	if _, err := c.Decode(lvl, cw); err != nil {
		t.Fatal(err) // warm the level and its scratch pool
	}
	copy(cw, dirty)
	allocs := testing.AllocsPerRun(10, func() {
		copy(cw, dirty)
		if _, err := c.Decode(lvl, cw); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("hard decode allocates %.1f objects/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(10, func() {
		copy(cw, dirty)
		if _, err := c.DecodeSoft(lvl, cw, llr); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("soft decode allocates %.1f objects/op, want 0", allocs)
	}
	copy(cw, clean)
	allocs = testing.AllocsPerRun(10, func() {
		if _, err := c.Decode(lvl, cw); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("clean decode allocates %.1f objects/op, want 0", allocs)
	}
}

// TestEncodeAllocs pins the allocation-free encode path.
func TestEncodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	c := testRig(t)
	lvl := c.MaxLevel()
	rng := stats.NewRNG(600)
	msg := make([]byte, c.DataBits()/8)
	for i := range msg {
		msg[i] = byte(rng.Intn(256))
	}
	pb, _ := c.ParityBytes(lvl)
	parity := make([]byte, pb)
	if err := c.EncodeInto(lvl, parity, msg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := c.EncodeInto(lvl, parity, msg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("EncodeInto allocates %.1f objects/op, want 0", allocs)
	}
}

// TestConcurrentSharedCodec hammers one codec from several goroutines
// across levels — the dispatcher shares a single codec across dies.
func TestConcurrentSharedCodec(t *testing.T) {
	c := testRig(t)
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			lvl := g % (c.MaxLevel() + 1)
			rng := stats.NewRNG(uint64(9000 + g))
			cw := makeCodeword(t, c, lvl, uint64(9000+g))
			want := append([]byte(nil), cw...)
			for i := 0; i < 8; i++ {
				flip(cw, c.CorrectionCap(lvl)/2, rng)
				if _, err := c.Decode(lvl, cw); err != nil {
					done <- err
					return
				}
				if !bytes.Equal(cw, want) {
					done <- errors.New("concurrent decode corrupted the codeword")
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
