package ldpc_test

import (
	"testing"

	"xlnand/internal/codectest"
	"xlnand/internal/ldpc"
)

// TestCodecConformance runs the shared ecc.Codec conformance suite
// against the LDPC family — identical to the BCH package's run, so the
// two families stay behaviourally interchangeable behind the interface.
func TestCodecConformance(t *testing.T) {
	codec, err := ldpc.NewPageCodec()
	if err != nil {
		t.Fatal(err)
	}
	codectest.Run(t, codec, codectest.Options{
		// Iterative decoding with a conservative calibrated cap: cap+1
		// may still repair (exactly), or fail with rollback.
		StrictCapPlusOne: false,
	})
}
