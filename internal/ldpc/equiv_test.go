package ldpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"xlnand/internal/stats"
)

// scalarDecodeIter is the historical edge-at-a-time min-sum decoder,
// kept verbatim as the reference the struct-of-arrays kernel in
// decodeIter is pinned against: per-edge branch chain for min1/min2,
// conditional negation for the message sign, a separate hard-decision
// repack loop after every layered pass, and per-iteration reloads of
// the original codeword bytes in the convergence flip count.
func scalarDecodeIter(d *Decoder, cw []byte, llr []int8, maxIter, flipGuard int) (int, int, error) {
	c := d.c
	s := struct {
		post, r, chans []float32
		hard, syn      []uint64
		out            []byte
	}{
		post:  make([]float32, c.n),
		r:     make([]float32, c.edges),
		chans: make([]float32, c.n),
		hard:  make([]uint64, c.n/Z),
		syn:   make([]uint64, c.m/Z),
		out:   make([]byte, c.n/8),
	}

	packWords(s.hard, cw)
	if c.syndromeZero(s.hard, s.syn) {
		if !c.crcOK(cw) {
			return 0, 0, ErrUncorrectable
		}
		return 0, 0, nil
	}

	if llr == nil {
		for v := 0; v < c.n; v++ {
			if s.hard[v/Z]&(1<<uint(63-v%Z)) == 0 {
				s.chans[v] = 1
			} else {
				s.chans[v] = -1
			}
		}
	} else {
		for v := 0; v < c.n; v++ {
			s.chans[v] = float32(llr[v])
		}
	}
	copy(s.post, s.chans)

	bestUnsat := c.m + 1
	stall := 0
	for iter := 0; iter < maxIter; iter++ {
		for ci := 0; ci < c.m; ci++ {
			lo, hi := c.checkStart[ci], c.checkStart[ci+1]
			min1, min2 := float32(llrClamp*2), float32(llrClamp*2)
			minAt := lo
			negs := 0
			for e := lo; e < hi; e++ {
				q := s.post[c.checkVar[e]] - s.r[e]
				if q < 0 {
					negs++
					q = -q
				}
				if q < min1 {
					min2, min1, minAt = min1, q, e
				} else if q < min2 {
					min2 = q
				}
			}
			m1 := min1 * minSumAlpha
			m2 := min2 * minSumAlpha
			for e := lo; e < hi; e++ {
				v := c.checkVar[e]
				q := s.post[v] - s.r[e]
				mag := m1
				if e == minAt {
					mag = m2
				}
				nr := mag
				if (negs&1 == 1) != (q < 0) {
					nr = -mag
				}
				p := q + nr
				if p > llrClamp {
					p = llrClamp
				} else if p < -llrClamp {
					p = -llrClamp
				}
				s.r[e] = nr
				s.post[v] = p
			}
		}

		for w := 0; w < c.n/Z; w++ {
			var word uint64
			base := w * Z
			for b := 0; b < Z; b++ {
				if s.post[base+b] < 0 {
					word |= 1 << uint(63-b)
				}
			}
			s.hard[w] = word
		}
		unsat := c.unsatisfied(s.hard, s.syn)
		if unsat == 0 {
			flips := 0
			for w, word := range s.hard {
				flips += popcountDiff(word, binary.BigEndian.Uint64(cw[w*8:]))
			}
			if flips > flipGuard {
				return 0, iter + 1, ErrUncorrectable
			}
			for w, word := range s.hard {
				binary.BigEndian.PutUint64(s.out[w*8:], word)
			}
			if !c.crcOK(s.out) {
				return 0, iter + 1, ErrUncorrectable
			}
			copy(cw, s.out)
			return flips, iter + 1, nil
		}
		if unsat < bestUnsat {
			bestUnsat, stall = unsat, 0
		} else if stall++; stall >= stallPatience {
			return 0, iter + 1, ErrUncorrectable
		}
	}
	return 0, maxIter, ErrUncorrectable
}

// TestMinSumScalarEquivalence replays the conformance error matrix
// ({1, cap/2, cap} errors per level, a 3*cap guard-breaker, and the
// soft-cap soft decode) through both the production struct-of-arrays
// kernel and the scalar reference, asserting identical iteration
// counts, flip counts, error verdicts and output bytes. This is the
// bit-exactness contract of the word-parallel refactor: the SoA pass
// is a reorganisation of the same arithmetic, not an approximation.
func TestMinSumScalarEquivalence(t *testing.T) {
	c := testRig(t)
	check := func(lvl, nerr int, soft bool, cw []byte, llr []int8, maxIter, guard int) {
		t.Helper()
		d, err := c.decoder(lvl)
		if err != nil {
			t.Fatal(err)
		}
		fastCW := append([]byte(nil), cw...)
		refCW := append([]byte(nil), cw...)
		fastFlips, fastIters, fastErr := d.decodeIter(fastCW, llr, maxIter, guard)
		refFlips, refIters, refErr := scalarDecodeIter(d, refCW, llr, maxIter, guard)
		if fastIters != refIters {
			t.Fatalf("level %d nerr %d soft=%v: SoA kernel used %d iterations, scalar %d",
				lvl, nerr, soft, fastIters, refIters)
		}
		if fastFlips != refFlips || !errors.Is(fastErr, refErr) && (fastErr != nil || refErr != nil) {
			t.Fatalf("level %d nerr %d soft=%v: SoA (flips=%d err=%v) vs scalar (flips=%d err=%v)",
				lvl, nerr, soft, fastFlips, fastErr, refFlips, refErr)
		}
		if !bytes.Equal(fastCW, refCW) {
			t.Fatalf("level %d nerr %d soft=%v: decoded codewords diverged", lvl, nerr, soft)
		}
	}
	for lvl := 0; lvl <= c.MaxLevel(); lvl++ {
		hardCap := c.CorrectionCap(lvl)
		for _, nerr := range []int{1, hardCap / 2, hardCap, 3 * hardCap} {
			rng := stats.NewRNG(900 + uint64(lvl*131+nerr))
			cw := makeCodeword(t, c, lvl, 900+uint64(lvl*131+nerr))
			flip(cw, nerr, rng)
			check(lvl, nerr, false, cw, nil, maxIterHard, flipGuard(hardCap))
		}
		softCap := c.SoftCorrectionCap(lvl)
		rng := stats.NewRNG(3100 + uint64(lvl))
		cw := makeCodeword(t, c, lvl, 3100+uint64(lvl))
		pos := flip(cw, softCap, rng)
		llr := softLLR(cw, pos, rng)
		check(lvl, softCap, true, cw, llr, maxIterSoft, flipGuard(softCap))
	}
}
