package ldpc

import (
	"fmt"
	"testing"

	"xlnand/internal/stats"
)

// BenchmarkLDPCDecode sweeps the min-sum hot path: clean early-exit,
// errored hard decode at half cap and at cap, across the weakest and
// strongest rate levels. CI archives the results in BENCH_ldpc.json.
func BenchmarkLDPCDecode(b *testing.B) {
	c, err := NewPageCodec()
	if err != nil {
		b.Fatal(err)
	}
	for _, lvl := range []int{0, c.MaxLevel()} {
		cap := c.CorrectionCap(lvl)
		for _, errs := range []int{0, cap / 2, cap} {
			b.Run(fmt.Sprintf("level%d/errs%d", lvl, errs), func(b *testing.B) {
				rng := stats.NewRNG(42)
				cw := makeCodeword(b, c, lvl, 42)
				dirty := append([]byte(nil), cw...)
				flip(dirty, errs, rng)
				work := append([]byte(nil), dirty...)
				if _, err := c.Decode(lvl, work); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(c.DataBits() / 8))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					copy(work, dirty)
					if _, err := c.Decode(lvl, work); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLDPCDecodeSoft measures the soft-input path at the soft cap —
// the recovery rung's decode cost.
func BenchmarkLDPCDecodeSoft(b *testing.B) {
	c, err := NewPageCodec()
	if err != nil {
		b.Fatal(err)
	}
	lvl := c.MaxLevel()
	rng := stats.NewRNG(77)
	cw := makeCodeword(b, c, lvl, 77)
	pos := flip(cw, c.SoftCorrectionCap(lvl), rng)
	llr := softLLR(cw, pos, rng)
	dirty := append([]byte(nil), cw...)
	work := append([]byte(nil), dirty...)
	if _, err := c.DecodeSoft(lvl, work, llr); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(c.DataBits() / 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, dirty)
		if _, err := c.DecodeSoft(lvl, work, llr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLDPCEncode measures the word-parallel systematic encoder.
func BenchmarkLDPCEncode(b *testing.B) {
	c, err := NewPageCodec()
	if err != nil {
		b.Fatal(err)
	}
	lvl := c.MaxLevel()
	rng := stats.NewRNG(7)
	msg := make([]byte, c.DataBits()/8)
	for i := range msg {
		msg[i] = byte(rng.Intn(256))
	}
	pb, _ := c.ParityBytes(lvl)
	parity := make([]byte, pb)
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.EncodeInto(lvl, parity, msg); err != nil {
			b.Fatal(err)
		}
	}
}
