//go:build !race

package ldpc

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
