package ldpc

import (
	"time"

	"xlnand/internal/ecc"
	"xlnand/internal/stats"
)

// The flat DecodeLatency model prices every dirty decode at the mean
// iteration count, but a min-sum engine's convergence time is strongly
// error-weight dependent: a one-bit upset settles in two or three
// layered passes while a near-cap pattern grinds through ten or more.
// The measured tables below close that gap — each capability level runs
// its own decoder against seeded random error patterns at a grid of
// weights and records the mean iterations-to-converge, so the codec
// calendar books the cost the engine would actually pay for the error
// weight the read observed.
const (
	// calTrials decodes per sampled weight; the layered schedule is
	// near-deterministic in weight, so a small sample already has tight
	// spread.
	calTrials = 3
	// calGridSteps sampled weights per level (intermediate weights are
	// linearly interpolated); keeps the one-off calibration to a few
	// dozen decodes.
	calGridSteps = 8
	// calSeed roots the calibration RNG; mixed with the level so every
	// level measures an independent — but reproducible — pattern set.
	calSeed = 0x1d9c0decca11b8a7
)

// measuredTable is one level's calibration: mean min-sum iterations to
// convergence indexed by injected error weight, 0..flipGuard(HardCap).
type measuredTable struct {
	iters []float64
}

// measuredAt returns (building on first use) the level's calibration
// table. Construction costs a few dozen decodes and is amortised behind
// the same atomic-slot pattern as the codes themselves.
func (c *Codec) measuredAt(level int) *measuredTable {
	i := c.ClampLevel(level)
	if t := c.measured[i].Load(); t != nil {
		return t
	}
	t := c.calibrate(i)
	c.mu.Lock()
	if prev := c.measured[i].Load(); prev != nil {
		t = prev
	} else {
		c.measured[i].Store(t)
	}
	c.mu.Unlock()
	return t
}

// calibrate measures the level's iterations-to-converge curve: encode a
// seeded random message, flip w bits, decode, record the iteration
// count the engine reports — the direct observable, not a model of it.
// Weights between grid points interpolate linearly; weights past the
// flip guard clamp to the last entry (such decodes are refused anyway).
func (c *Codec) calibrate(level int) *measuredTable {
	maxW := flipGuard(c.p.HardCap[level])
	t := &measuredTable{iters: make([]float64, maxW+1)}
	d, err := c.decoder(level)
	if err != nil {
		return t
	}
	rng := stats.NewRNG(calSeed + uint64(level)*0x9e3779b97f4a7c15)
	msg := make([]byte, c.p.K/8)
	for i := range msg {
		msg[i] = byte(rng.Intn(256))
	}
	pb, _ := c.ParityBytes(level)
	clean := make([]byte, len(msg)+pb)
	copy(clean, msg)
	if err := c.EncodeInto(level, clean[len(msg):], msg); err != nil {
		return t
	}
	cw := make([]byte, len(clean))
	step := maxW / calGridSteps
	if step < 1 {
		step = 1
	}
	prevW, prevIters := 0, 0.0
	record := func(w int, iters float64) {
		// Fill the gap from the previous grid point by interpolation.
		for u := prevW + 1; u <= w; u++ {
			frac := float64(u-prevW) / float64(w-prevW)
			t.iters[u] = prevIters + frac*(iters-prevIters)
		}
		prevW, prevIters = w, iters
	}
	for w := step; w <= maxW; w += step {
		if w+step > maxW {
			w = maxW // land the grid exactly on the guard bound
		}
		total := 0
		for trial := 0; trial < calTrials; trial++ {
			copy(cw, clean)
			for _, p := range rng.SampleK(len(cw)*8, w) {
				cw[p/8] ^= 1 << uint(7-p%8)
			}
			_, iters, err := d.decodeIter(cw, nil, maxIterHard, maxW)
			if err != nil {
				// Beyond the cliff (possible near the guard bound):
				// the engine burned what it burned; that is the cost.
				total += iters
				continue
			}
			total += iters
		}
		record(w, float64(total)/calTrials)
		if w == maxW {
			break
		}
	}
	return t
}

// MeasuredDecodeLatency implements ecc.MeasuredLatency: the decode cost
// at the observed error weight, from the calibrated iteration tables
// run through the same pipeline model as the flat estimate. Weight zero
// is the early-termination syndrome pass; weights past the flip guard
// clamp to the heaviest measured entry.
func (c *Codec) MeasuredDecodeLatency(level, nErr int) time.Duration {
	i := c.ClampLevel(level)
	n := float64(c.p.K + crcBits + c.p.ParityBits[i])
	cycles := n/float64(c.hw.BitParallelism) + float64(c.hw.PipelineFillCyc)
	if nErr > 0 {
		t := c.measuredAt(i)
		w := nErr
		if w >= len(t.iters) {
			w = len(t.iters) - 1
		}
		perIter := float64(c.edgeCount(i))/float64(c.hw.EdgeParallelism) + n/float64(c.hw.BitParallelism)
		cycles += t.iters[w] * perIter
	}
	return c.toDuration(cycles)
}

var _ ecc.MeasuredLatency = (*Codec)(nil)
