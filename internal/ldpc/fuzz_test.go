package ldpc

// Round-trip fuzzer mirroring the BCH family's FuzzEncodeDecodeRoundtrip:
// every input drives systematic encode, deterministic error injection
// and both decode paths, pinning the family's safety contract — decode
// success implies the exact original codeword (the embedded CRC64 makes
// silent miscorrection a detected failure), decode failure implies
// byte-exact rollback. Run with
// `go test -fuzz FuzzLDPCRoundtrip ./internal/ldpc` to explore beyond
// the seed corpus.

import (
	"bytes"
	"sync"
	"testing"
)

// fuzzParams is a small single-level code (k = 2048, 256 parity) so the
// fuzz engine iterates quickly; guarantees below are calibrated for it.
var fuzzCodec = sync.OnceValues(func() (*Codec, error) {
	return NewCodec(Params{
		K:          2048,
		ParityBits: []int{256},
		HardCap:    []int{6},
		SoftCap:    []int{16},
	}, DefaultHWConfig())
})

// fuzzGuaranteed are the error weights the fuzzer REQUIRES decoding to
// repair (stricter patterns than the calibrated random-error caps are
// possible, so the floor is conservative).
const (
	fuzzGuaranteedHard = 3
	fuzzGuaranteedSoft = 10
)

func FuzzLDPCRoundtrip(f *testing.F) {
	f.Add([]byte{0x00}, uint16(0), byte(0), false)
	f.Add([]byte{0xff, 0x01, 0x80, 0xaa}, uint16(3), byte(2), false)
	f.Add(bytes.Repeat([]byte{0x5a}, 32), uint16(0xbeef), byte(5), true)
	f.Add([]byte("fuzz the min-sum decoder"), uint16(0x1234), byte(9), true)
	f.Add(bytes.Repeat([]byte{0x00, 0xff}, 64), uint16(0x7777), byte(14), true)

	f.Fuzz(func(t *testing.T, raw []byte, errSeed uint16, errCount byte, soft bool) {
		c, err := fuzzCodec()
		if err != nil {
			t.Fatal(err)
		}
		k := c.DataBits() / 8
		pb, err := c.ParityBytes(0)
		if err != nil {
			t.Fatal(err)
		}
		msg := make([]byte, k)
		copy(msg, raw)
		cw := make([]byte, k+pb)
		copy(cw, msg)
		if err := c.EncodeInto(0, cw[k:], msg); err != nil {
			t.Fatal(err)
		}
		clean := append([]byte(nil), cw...)

		// An uncorrupted codeword must pass the zero-iteration path.
		if n, err := c.Decode(0, cw); err != nil || n != 0 {
			t.Fatalf("clean decode: n=%d err=%v", n, err)
		}
		if !bytes.Equal(cw, clean) {
			t.Fatal("clean decode modified the codeword")
		}

		// Deterministic error injection (LCG walk over the fuzz seed).
		nbits := len(cw) * 8
		limit := 3 * c.CorrectionCap(0)
		if soft {
			limit = 2 * c.SoftCorrectionCap(0)
		}
		nerr := int(errCount) % (limit + 1)
		state := uint32(errSeed) + 1
		seen := map[int]bool{}
		var positions []int
		for len(positions) < nerr {
			state = state*1664525 + 1013904223
			p := int(state>>8) % nbits
			if !seen[p] {
				seen[p] = true
				positions = append(positions, p)
			}
		}
		for _, p := range positions {
			cw[p/8] ^= 1 << uint(7-p%8)
		}
		dirty := append([]byte(nil), cw...)

		var n int
		if soft {
			// Truthful confidence: every injected error weak, everything
			// else strong (the device model's capture limit).
			llr := make([]int8, nbits)
			for i := 0; i < nbits; i++ {
				if cw[i/8]&(1<<uint(7-i%8)) == 0 {
					llr[i] = 7
				} else {
					llr[i] = -7
				}
			}
			for _, p := range positions {
				if llr[p] > 0 {
					llr[p] = 1
				} else {
					llr[p] = -1
				}
			}
			n, err = c.DecodeSoft(0, cw, llr)
		} else {
			n, err = c.Decode(0, cw)
		}

		if err != nil {
			if !bytes.Equal(cw, dirty) {
				t.Fatal("failed decode modified the codeword (rollback broken)")
			}
			guarantee := fuzzGuaranteedHard
			if soft {
				guarantee = fuzzGuaranteedSoft
			}
			if nerr <= guarantee {
				t.Fatalf("decode refused %d errors within the guaranteed floor %d (soft=%v)", nerr, guarantee, soft)
			}
			return
		}
		// Success means THE original data — the embedded CRC64 turns any
		// wrong-codeword convergence into a failure, so a fuzz input
		// reaching this branch with different bytes is a real bug.
		if !bytes.Equal(cw, clean) {
			t.Fatalf("decode succeeded with wrong data (nerr=%d soft=%v)", nerr, soft)
		}
		if n != nerr {
			t.Fatalf("corrected %d of %d injected errors", n, nerr)
		}
	})
}
