package nand

import (
	"math"
	"testing"

	"xlnand/internal/stats"
)

const testCells = 2048 // cells per simulated test page (full page = 16384)

func freshPage(t *testing.T, seed uint64) (*PageSim, AgedParams) {
	t.Helper()
	cal := DefaultCalibration()
	sim := NewPageSim(cal, testCells, stats.NewRNG(seed))
	aged := cal.Age(0)
	sim.Erase(aged)
	return sim, aged
}

func uniformTargets(n int, l Level) []Level {
	out := make([]Level, n)
	for i := range out {
		out[i] = l
	}
	return out
}

func mixedTargets(r *stats.RNG, n int) []Level {
	out := make([]Level, n)
	for i := range out {
		out[i] = Level(r.Intn(4))
	}
	return out
}

func TestEraseDistribution(t *testing.T) {
	sim, _ := freshPage(t, 1)
	s := stats.Summarize(sim.VTHs())
	cal := DefaultCalibration()
	if math.Abs(s.Mean-cal.EraseMu) > 0.05 {
		t.Fatalf("erased mean = %v, want ~%v", s.Mean, cal.EraseMu)
	}
	if math.Abs(s.Std-cal.EraseSigma) > 0.05 {
		t.Fatalf("erased sigma = %v, want ~%v", s.Std, cal.EraseSigma)
	}
	if s.Max > cal.Read[0] {
		t.Fatalf("erased tail %v crosses R1 %v on a fresh device", s.Max, cal.Read[0])
	}
}

func TestProgramRequiresErase(t *testing.T) {
	sim, aged := freshPage(t, 2)
	targets := uniformTargets(testCells, L2)
	if _, err := sim.Program(targets, ISPPSV, aged); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Program(targets, ISPPSV, aged); err == nil {
		t.Fatal("second program without erase accepted")
	}
}

func TestProgramRejectsWrongTargetCount(t *testing.T) {
	sim, aged := freshPage(t, 3)
	if _, err := sim.Program(make([]Level, 5), ISPPSV, aged); err == nil {
		t.Fatal("mismatched target count accepted")
	}
}

func TestProgramPlacesAllLevels(t *testing.T) {
	for _, alg := range []Algorithm{ISPPSV, ISPPDV} {
		sim, aged := freshPage(t, 4)
		r := stats.NewRNG(44)
		targets := mixedTargets(r, testCells)
		res, err := sim.Program(targets, alg, aged)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failures != 0 {
			t.Fatalf("%v: %d cells failed to program on fresh device", alg, res.Failures)
		}
		got := sim.ReadLevels(aged, ReadOffsets{})
		wrong := 0
		for i := range targets {
			if got[i] != targets[i] {
				wrong++
			}
		}
		// Fresh-device misreads must be very rare (RBER ~ 1e-6..1e-5).
		if wrong > 3 {
			t.Fatalf("%v: %d/%d level misreads on fresh device", alg, wrong, testCells)
		}
	}
}

func TestProgrammedDistributionsAboveVerify(t *testing.T) {
	sim, aged := freshPage(t, 5)
	cal := DefaultCalibration()
	targets := uniformTargets(testCells, L3)
	if _, err := sim.Program(targets, ISPPSV, aged); err != nil {
		t.Fatal(err)
	}
	for i, v := range sim.VTHs() {
		if v < cal.VFY[2]-3*aged.ReadNoise-0.05 {
			t.Fatalf("cell %d verified at %v below VFY3 %v", i, v, cal.VFY[2])
		}
	}
}

func TestVTHMonotoneUnderPulses(t *testing.T) {
	// Property: programming never decreases a cell's VTH (program pulses
	// only add charge; erase is the only way down).
	sim, aged := freshPage(t, 6)
	before := sim.VTHs()
	r := stats.NewRNG(66)
	if _, err := sim.Program(mixedTargets(r, testCells), ISPPDV, aged); err != nil {
		t.Fatal(err)
	}
	after := sim.VTHs()
	for i := range before {
		if after[i] < before[i]-1e-9 {
			t.Fatalf("cell %d VTH decreased: %v -> %v", i, before[i], after[i])
		}
	}
}

func TestDVCompactsDistributions(t *testing.T) {
	// The whole point of ISPP-DV: the programmed distribution is tighter.
	cal := DefaultCalibration()
	width := func(alg Algorithm, seed uint64) float64 {
		sim := NewPageSim(cal, testCells, stats.NewRNG(seed))
		aged := cal.Age(0)
		sim.Erase(aged)
		if _, err := sim.Program(uniformTargets(testCells, L2), alg, aged); err != nil {
			t.Fatal(err)
		}
		return stats.Summarize(sim.VTHs()).Std
	}
	sv := width(ISPPSV, 7)
	dv := width(ISPPDV, 7)
	if dv >= sv*0.85 {
		t.Fatalf("DV sigma %v not clearly tighter than SV sigma %v", dv, sv)
	}
}

func TestDVCostsMoreTimeAndVerifies(t *testing.T) {
	cal := DefaultCalibration()
	run := func(alg Algorithm) ProgramResult {
		sim := NewPageSim(cal, testCells, stats.NewRNG(8))
		aged := cal.Age(0)
		sim.Erase(aged)
		r := stats.NewRNG(88)
		res, err := sim.Program(mixedTargets(r, testCells), alg, aged)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sv, dv := run(ISPPSV), run(ISPPDV)
	if dv.Duration <= sv.Duration {
		t.Fatalf("DV %v not slower than SV %v", dv.Duration, sv.Duration)
	}
	if dv.PreVerifies == 0 {
		t.Fatal("DV performed no pre-verifies")
	}
	if sv.PreVerifies != 0 {
		t.Fatal("SV performed pre-verifies")
	}
	loss := 1 - float64(sv.Duration)/float64(dv.Duration)
	if loss < 0.25 || loss > 0.60 {
		t.Fatalf("write loss %.1f%% outside plausible band (paper: 40-48%%)", 100*loss)
	}
}

func TestProgramTimelineConsistency(t *testing.T) {
	sim, aged := freshPage(t, 9)
	r := stats.NewRNG(99)
	res, err := sim.Program(mixedTargets(r, testCells), ISPPDV, aged)
	if err != nil {
		t.Fatal(err)
	}
	if got := TimelineDuration(res.Timeline); got != res.Duration {
		t.Fatalf("timeline sums to %v, result says %v", got, res.Duration)
	}
	var pulses, verifies int
	for _, ph := range res.Timeline {
		switch ph.Kind {
		case PhaseProgram:
			pulses++
			if ph.VCG < DefaultCalibration().VStart || ph.VCG > DefaultCalibration().VEnd {
				t.Fatalf("pulse VCG %v outside pump range", ph.VCG)
			}
			if ph.ActiveFrac <= 0 || ph.ActiveFrac > 1 {
				t.Fatalf("active fraction %v out of (0,1]", ph.ActiveFrac)
			}
		case PhaseVerify:
			verifies++
		}
	}
	if pulses != res.Pulses {
		t.Fatalf("timeline has %d pulses, result %d", pulses, res.Pulses)
	}
	if verifies != res.Verifies+res.PreVerifies {
		t.Fatalf("timeline has %d verifies, result %d+%d", verifies, res.Verifies, res.PreVerifies)
	}
}

func TestL0PageProgramsInstantly(t *testing.T) {
	// A page targeted entirely at L0 needs no pulses at all.
	sim, aged := freshPage(t, 10)
	res, err := sim.Program(uniformTargets(testCells, L0), ISPPSV, aged)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pulses != 0 || res.Verifies != 0 {
		t.Fatalf("L0 page used %d pulses, %d verifies", res.Pulses, res.Verifies)
	}
}

func TestL3PatternSlowerThanL1(t *testing.T) {
	// Higher target levels need a longer pump ramp — the pattern
	// dependence behind Fig. 6.
	cal := DefaultCalibration()
	dur := func(l Level) ProgramResult {
		sim := NewPageSim(cal, testCells, stats.NewRNG(11))
		aged := cal.Age(0)
		sim.Erase(aged)
		res, err := sim.Program(uniformTargets(testCells, l), ISPPSV, aged)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	l1, l2, l3 := dur(L1), dur(L2), dur(L3)
	if !(l1.Duration < l2.Duration && l2.Duration < l3.Duration) {
		t.Fatalf("pattern durations not ordered: L1=%v L2=%v L3=%v",
			l1.Duration, l2.Duration, l3.Duration)
	}
	if !(l1.MaxVCG < l3.MaxVCG) {
		t.Fatalf("L3 did not need a higher VCG than L1")
	}
}

func TestAgingBroadensDistributions(t *testing.T) {
	cal := DefaultCalibration()
	width := func(cycles float64) float64 {
		sim := NewPageSim(cal, testCells, stats.NewRNG(12))
		aged := cal.Age(cycles)
		sim.Erase(aged)
		if _, err := sim.Program(uniformTargets(testCells, L2), ISPPSV, aged); err != nil {
			t.Fatal(err)
		}
		return stats.Summarize(sim.VTHs()).Std
	}
	fresh, aged := width(100), width(1e6)
	if aged <= fresh {
		t.Fatalf("aged sigma %v not wider than fresh %v", aged, fresh)
	}
}

func TestAgedParamsMonotone(t *testing.T) {
	cal := DefaultCalibration()
	prev := cal.Age(0)
	for _, n := range []float64{1e2, 1e3, 1e4, 1e5, 1e6} {
		cur := cal.Age(n)
		if cur.InjSigma < prev.InjSigma || cur.EraseSigma < prev.EraseSigma ||
			cur.RetShift < prev.RetShift || cur.KSlowTail < prev.KSlowTail {
			t.Fatalf("aging parameters not monotone at N=%g", n)
		}
		prev = cur
	}
	if cal.Age(-5).Cycles != 0 {
		t.Fatal("negative cycles not clamped")
	}
}

func TestNoProgramFailuresThroughLifetime(t *testing.T) {
	// The pulse budget must cover the slow-cell tail through end of life
	// for both algorithms (a failure here means mis-calibration).
	cal := DefaultCalibration()
	for _, alg := range []Algorithm{ISPPSV, ISPPDV} {
		for _, cycles := range []float64{0, 1e4, 1e6} {
			sim := NewPageSim(cal, testCells, stats.NewRNG(13))
			aged := cal.Age(cycles)
			sim.Erase(aged)
			r := stats.NewRNG(133)
			res, err := sim.Program(mixedTargets(r, testCells), alg, aged)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failures != 0 {
				t.Fatalf("%v at N=%g: %d program failures", alg, cycles, res.Failures)
			}
		}
	}
}
