package nand

import (
	"math"
	"testing"

	"xlnand/internal/stats"
)

func TestTransferCurveStaircase(t *testing.T) {
	cal := DefaultCalibration()
	// Paper Fig. 4 setup: 1 V steps, starting threshold -6 V.
	tc := cal.SimulateTransferCurve(6, 24, 1.0, -6)
	if len(tc.VCG) != len(tc.VTH) || len(tc.VCG) != 19 {
		t.Fatalf("curve has %d/%d points", len(tc.VCG), len(tc.VTH))
	}
	// Monotone non-decreasing.
	for i := 1; i < len(tc.VTH); i++ {
		if tc.VTH[i] < tc.VTH[i-1] {
			t.Fatalf("VTH decreased at step %d", i)
		}
	}
	// In the saturated region the slope must be 1 (VTH tracks VCG).
	last := len(tc.VTH) - 1
	slope := (tc.VTH[last] - tc.VTH[last-3]) / (tc.VCG[last] - tc.VCG[last-3])
	if math.Abs(slope-1) > 1e-9 {
		t.Fatalf("saturated ISPP slope = %v, want 1", slope)
	}
	// And the offset is K: VTH = VCG - K.
	if math.Abs(tc.VTH[last]-(tc.VCG[last]-cal.KOffsetMu)) > 1e-9 {
		t.Fatalf("saturated VTH %v != VCG - K = %v", tc.VTH[last], tc.VCG[last]-cal.KOffsetMu)
	}
}

func TestTransferCurveFlatBeforeTurnOn(t *testing.T) {
	cal := DefaultCalibration()
	tc := cal.SimulateTransferCurve(2, 24, 1.0, -2)
	// While VCG - K < VTH0 the threshold must not move.
	for i, vcg := range tc.VCG {
		if vcg-cal.KOffsetMu < -2 && tc.VTH[i] != -2 {
			t.Fatalf("VTH moved to %v before turn-on at VCG=%v", tc.VTH[i], vcg)
		}
	}
}

func TestCompactModelFitsReference(t *testing.T) {
	// Fig. 4's claim: the compact model fits the (here: synthetic)
	// experimental staircase. RMS error must be well under one ISPP step.
	cal := DefaultCalibration()
	rng := stats.NewRNG(14)
	sim := cal.SimulateTransferCurve(6, 24, 1.0, -6)
	ref := cal.ReferenceTransferCurve(6, 24, 1.0, -6, rng)
	rms := RMSDiff(sim, ref)
	if rms > 0.5 {
		t.Fatalf("compact model RMS error %v V vs reference (> half a 1 V step)", rms)
	}
	if rms == 0 {
		t.Fatal("suspiciously perfect fit: reference noise missing")
	}
}

func TestRMSDiffEdgeCases(t *testing.T) {
	a := TransferCurve{VTH: []float64{1, 2, 3}}
	if got := RMSDiff(a, a); got != 0 {
		t.Fatalf("RMS of identical curves = %v", got)
	}
	if !math.IsNaN(RMSDiff(TransferCurve{}, TransferCurve{})) {
		t.Fatal("RMS of empty curves should be NaN")
	}
	b := TransferCurve{VTH: []float64{1, 2}}
	if got := RMSDiff(a, b); math.IsNaN(got) {
		t.Fatal("RMS should handle length mismatch by truncation")
	}
}
