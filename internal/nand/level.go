package nand

import (
	"encoding/binary"
	"fmt"
)

// Level identifies one of the four V_TH distributions of a 2-bit MLC cell
// (paper Fig. 3): L0 is the erased state, L1-L3 are programmed.
type Level uint8

const (
	L0 Level = iota
	L1
	L2
	L3
	numLevels
)

// String implements fmt.Stringer.
func (l Level) String() string { return fmt.Sprintf("L%d", uint8(l)) }

// Valid reports whether l is one of the four MLC levels.
func (l Level) Valid() bool { return l < numLevels }

// grayEncode maps a level to its 2-bit Gray pattern (upper bit, lower
// bit). Adjacent levels differ in exactly one bit, so a one-level misread
// costs one bit error — the property that links the level-shift
// probability to RBER.
//
//	L0 = 11, L1 = 10, L2 = 00, L3 = 01
var grayEncode = [numLevels]uint8{0b11, 0b10, 0b00, 0b01}

// grayDecode inverts grayEncode.
var grayDecode = func() [4]Level {
	var d [4]Level
	for l, bits := range grayEncode {
		d[bits] = Level(l)
	}
	return d
}()

// Bits returns the Gray-coded (upper, lower) bit pair stored by a cell at
// level l.
func (l Level) Bits() (upper, lower uint8) {
	b := grayEncode[l]
	return b >> 1 & 1, b & 1
}

// LevelFromBits returns the level storing the given Gray-coded bit pair.
func LevelFromBits(upper, lower uint8) Level {
	return grayDecode[(upper&1)<<1|lower&1]
}

// BitErrors returns the number of bit errors caused by reading level got
// when level want was stored (Hamming distance of the Gray patterns).
func BitErrors(want, got Level) int {
	x := grayEncode[want] ^ grayEncode[got]
	return int(x&1 + x>>1&1)
}

// TargetLevels converts a data byte pair stream into per-cell target
// levels: each cell stores 2 bits, MSB-first within each byte, with the
// even bit (0,2,4,6) as the upper page bit and the odd bit as the lower
// page bit. The returned slice has 4 levels per byte.
func TargetLevels(data []byte) []Level {
	out := make([]Level, 0, len(data)*4)
	for _, b := range data {
		for i := 0; i < 4; i++ {
			upper := b >> uint(7-2*i) & 1
			lower := b >> uint(6-2*i) & 1
			out = append(out, LevelFromBits(upper, lower))
		}
	}
	return out
}

// LevelsToBytes inverts TargetLevels.
func LevelsToBytes(levels []Level) []byte {
	return LevelsToBytesInto(make([]byte, (len(levels)+3)/4), levels)
}

// LevelsToBytesInto packs levels into dst, which must hold
// (len(levels)+3)/4 bytes; written bytes are fully assembled before the
// store (and any partial tail byte cleared first), so a reused scratch
// buffer never leaks a previous read's bits.
//
// The bulk runs word-parallel: 32 cells assemble into one uint64 — each
// cell contributes its 2-bit Gray pattern MSB-first, exactly the scalar
// layout — and land as 8 output bytes per big-endian store.
func LevelsToBytesInto(dst []byte, levels []Level) []byte {
	dst = dst[:(len(levels)+3)/4]
	n32 := len(levels) &^ 31
	for c := 0; c < n32; c += 32 {
		var w uint64
		for _, l := range levels[c : c+32 : c+32] {
			w = w<<2 | uint64(grayEncode[l])
		}
		binary.BigEndian.PutUint64(dst[c/4:], w)
	}
	for i := n32 / 4; i < len(dst); i++ {
		dst[i] = 0
	}
	for i := n32; i < len(levels); i++ {
		upper, lower := levels[i].Bits()
		dst[i/4] |= upper << uint(7-2*(i%4))
		dst[i/4] |= lower << uint(6-2*(i%4))
	}
	return dst
}

// VerifyTarget returns the verify voltage a programmed level must exceed;
// it panics for L0, which is reached by erase, not program.
func (c Calibration) VerifyTarget(l Level) float64 {
	if l == L0 || !l.Valid() {
		panic("nand: no verify level for " + l.String())
	}
	return c.VFY[l-1]
}

// ClassifyVTH returns the level a read operation infers from a cell
// threshold voltage, by comparison against R1..R3 (paper Fig. 3).
func (c Calibration) ClassifyVTH(vth float64) Level {
	return c.ClassifyVTHShifted(vth, ReadOffsets{})
}

// ClassifyVTHShifted classifies against the read references shifted by
// the per-boundary offset triple — the sensing primitive of staged
// read-retry (negative offsets track retention drift toward erase).
func (c Calibration) ClassifyVTHShifted(vth float64, off ReadOffsets) Level {
	switch {
	case vth < c.Read[0]+off[0]:
		return L0
	case vth < c.Read[1]+off[1]:
		return L1
	case vth < c.Read[2]+off[2]:
		return L2
	default:
		return L3
	}
}
