package nand

import (
	"math"
	"testing"

	"xlnand/internal/stats"
)

func TestRBERAnchorsFig5(t *testing.T) {
	cal := DefaultCalibration()
	// Paper anchors: SV fresh 1e-6; SV at 1e6 cycles 1e-3; DV one order
	// of magnitude below SV across the lifetime.
	if got := cal.RBER(ISPPSV, 0); math.Abs(got-1e-6)/1e-6 > 1e-9 {
		t.Fatalf("SV fresh RBER = %g, want 1e-6", got)
	}
	if got := cal.RBER(ISPPSV, 1e6); math.Abs(got-1e-3)/1e-3 > 1e-6 {
		t.Fatalf("SV EOL RBER = %g, want 1e-3", got)
	}
	dv := cal.RBER(ISPPDV, 1e6)
	if dv < 7e-5 || dv > 1e-4 {
		t.Fatalf("DV EOL RBER = %g, want ≈ 8.4e-5", dv)
	}
}

func TestRBEROneOrderImprovementEverywhere(t *testing.T) {
	cal := DefaultCalibration()
	for _, n := range []float64{0, 1e2, 1e3, 1e4, 1e5, 1e6} {
		ratio := cal.RBER(ISPPSV, n) / cal.RBER(ISPPDV, n)
		if ratio < 8 || ratio > 16 {
			t.Fatalf("SV/DV ratio at N=%g is %v, want ≈ one order of magnitude", n, ratio)
		}
	}
}

func TestRBERMonotoneInCycles(t *testing.T) {
	cal := DefaultCalibration()
	for _, alg := range []Algorithm{ISPPSV, ISPPDV} {
		prev := 0.0
		for n := 1.0; n <= 1e7; n *= 3 {
			cur := cal.RBER(alg, n)
			if cur < prev {
				t.Fatalf("%v: RBER decreased at N=%g", alg, n)
			}
			prev = cur
		}
	}
}

func TestRBERCeiling(t *testing.T) {
	cal := DefaultCalibration()
	if got := cal.RBER(ISPPSV, 1e12); got > cal.RBERCeiling {
		t.Fatalf("RBER %g exceeded ceiling %g", got, cal.RBERCeiling)
	}
}

func TestMeasureRBERAgedSVWithinOrderOfModel(t *testing.T) {
	// At the aged, high-RBER corner the Monte-Carlo array and the
	// analytic model must agree within an order of magnitude — this is
	// the bridge between the two fidelity layers.
	if testing.Short() {
		t.Skip("Monte-Carlo RBER validation skipped in -short mode")
	}
	cal := DefaultCalibration()
	rng := stats.NewRNG(42)
	m := MeasureRBER(cal, ISPPSV, 1e6, 4096, 50, 60, rng)
	if m.UpperBound {
		t.Fatalf("no errors observed at EOL SV; MC model far off (pages=%d)", m.Pages)
	}
	model := cal.RBER(ISPPSV, 1e6)
	ratio := m.RBER / model
	if ratio < 0.05 || ratio > 20 {
		t.Fatalf("MC RBER %g vs model %g: ratio %v outside order-of-magnitude band",
			m.RBER, model, ratio)
	}
}

func TestMeasureRBEROrderingDVBelowSV(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo ordering check skipped in -short mode")
	}
	cal := DefaultCalibration()
	sv := MeasureRBER(cal, ISPPSV, 1e6, 4096, 40, 40, stats.NewRNG(43))
	dv := MeasureRBER(cal, ISPPDV, 1e6, 4096, 40, 40, stats.NewRNG(43))
	// DV may well see zero errors (upper bound); its estimate must in
	// any case sit below the SV measurement.
	if dv.RBER >= sv.RBER {
		t.Fatalf("MC: DV RBER %g not below SV %g", dv.RBER, sv.RBER)
	}
}

func TestMeasureRBERProgressivelyWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo aging check skipped in -short mode")
	}
	cal := DefaultCalibration()
	mid := MeasureRBER(cal, ISPPSV, 1e4, 4096, 30, 30, stats.NewRNG(44))
	eol := MeasureRBER(cal, ISPPSV, 1e6, 4096, 30, 30, stats.NewRNG(44))
	if eol.RBER <= mid.RBER {
		t.Fatalf("MC RBER not growing with wear: 1e4->%g, 1e6->%g", mid.RBER, eol.RBER)
	}
}

func TestEstimateProgramTracksMC(t *testing.T) {
	if testing.Short() {
		t.Skip("estimator-vs-MC comparison skipped in -short mode")
	}
	cal := DefaultCalibration()
	for _, alg := range []Algorithm{ISPPSV, ISPPDV} {
		for _, cycles := range []float64{0, 1e6} {
			m := MeasureRBER(cal, alg, cycles, 4096, 1, 12, stats.NewRNG(45))
			est := EstimateProgram(cal, alg, cal.Age(cycles))
			ratio := float64(est.Duration) / float64(m.AvgProgram.Duration)
			if ratio < 0.7 || ratio > 1.4 {
				t.Fatalf("%v N=%g: estimator %v vs MC %v (ratio %.2f)",
					alg, cycles, est.Duration, m.AvgProgram.Duration, ratio)
			}
		}
	}
}

func TestEstimateProgramWriteLossBand(t *testing.T) {
	// Fig. 9's envelope: loss ≈ 40% fresh growing to ≈ 48% at end of
	// life (we accept 35-55% with strict monotone growth in wear).
	cal := DefaultCalibration()
	prevLoss := 0.0
	for _, cycles := range []float64{1, 1e3, 1e6} {
		sv := EstimateProgram(cal, ISPPSV, cal.Age(cycles))
		dv := EstimateProgram(cal, ISPPDV, cal.Age(cycles))
		loss := 1 - float64(sv.Duration)/float64(dv.Duration)
		if loss < 0.35 || loss > 0.55 {
			t.Fatalf("write loss %.1f%% at N=%g outside band", 100*loss, cycles)
		}
		if loss < prevLoss-0.03 {
			t.Fatalf("write loss shrank materially with age at N=%g", cycles)
		}
		prevLoss = loss
	}
}

func TestDVProgramNearPaperDuration(t *testing.T) {
	// Paper §6.3.3: ISPP-DV program time ≈ 1.5 ms.
	cal := DefaultCalibration()
	dv := EstimateProgram(cal, ISPPDV, cal.Age(1e4))
	ms := dv.Duration.Seconds() * 1e3
	if ms < 1.1 || ms > 2.1 {
		t.Fatalf("DV program time %.2f ms, paper says ≈ 1.5 ms", ms)
	}
}
