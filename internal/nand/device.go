package nand

import (
	"fmt"
	"time"

	"xlnand/internal/stats"
)

// Device is the functional NAND flash device the memory controller
// drives: pages of raw bytes organised in blocks, with erase-before-
// program discipline, per-block program/erase wear and a fault-injection
// read path driven by the analytic RBER model. The program algorithm is
// runtime-selectable per operation — the physical-layer knob this paper
// introduces (§5: in current devices it is "set at fabrication time and
// hardwired"; here the code-ROM holds both routines).
//
// Device methods are not safe for concurrent use; the controller owns it.
type Device struct {
	cal    Calibration
	stress StressConfig
	rng    *stats.RNG
	blocks []block

	// clockHours is the device's retention clock, advanced explicitly by
	// AdvanceTime so lifetime studies can bake stored data.
	clockHours float64

	// timing observed by the last operation (for the controller's
	// busy/ready modelling)
	lastOpDuration time.Duration

	// errPos is the error-position scratch for corruptInto, reused read
	// over read (Device is single-goroutine by contract).
	errPos []int

	// programSeq stamps stored page contents: it increments on every
	// Program, so a content identity (page.seq) is never reused even
	// across erase/re-program of the same page. Controllers use the
	// stamp to prove a sensed page still holds bytes they have already
	// verified (the clean-read decode short-circuit).
	programSeq uint64

	// lastSenseFlips / lastSenseSeq describe the most recent ReadInto:
	// how many bit errors the fault-injection path flipped (data and
	// spare combined) and the content stamp of the page it sensed.
	lastSenseFlips int
	lastSenseSeq   uint64
}

type block struct {
	cycles float64 // program/erase cycles endured
	reads  float64 // reads since last erase (read-disturb stress)
	pages  []page
}

type page struct {
	data    []byte // nil until programmed
	spare   []byte
	written bool
	// seq is the device-wide program stamp of the stored content.
	seq uint64
	// algorithm used when the page was programmed; determines its RBER
	alg Algorithm
	// cycles of the parent block at program time
	cyclesAtWrite float64
	// retention clock value at program time
	writtenAtHours float64
}

// NewDevice builds a device with the given number of blocks.
func NewDevice(cal Calibration, blocks int, seed uint64) *Device {
	d := &Device{cal: cal, stress: DefaultStressConfig(), rng: stats.NewRNG(seed)}
	d.blocks = make([]block, blocks)
	for i := range d.blocks {
		d.blocks[i].pages = make([]page, cal.PagesPerBlock)
	}
	return d
}

// AdvanceTime moves the retention clock forward, baking every stored
// page (paper §1's data-retention mechanism [4]).
func (d *Device) AdvanceTime(hours float64) {
	if hours > 0 {
		d.clockHours += hours
	}
}

// ClockHours returns the retention clock.
func (d *Device) ClockHours() float64 { return d.clockHours }

// BlockReads returns a block's read count since its last erase.
func (d *Device) BlockReads(blockIdx int) (float64, error) {
	if blockIdx < 0 || blockIdx >= len(d.blocks) {
		return 0, fmt.Errorf("nand: block %d out of range", blockIdx)
	}
	return d.blocks[blockIdx].reads, nil
}

// Calibration returns the device's calibration constants.
func (d *Device) Calibration() Calibration { return d.cal }

// Blocks returns the number of blocks.
func (d *Device) Blocks() int { return len(d.blocks) }

// PagesPerBlock returns the pages per block.
func (d *Device) PagesPerBlock() int { return d.cal.PagesPerBlock }

// Cycles returns the program/erase cycle count of a block.
func (d *Device) Cycles(blockIdx int) (float64, error) {
	if blockIdx < 0 || blockIdx >= len(d.blocks) {
		return 0, fmt.Errorf("nand: block %d out of range", blockIdx)
	}
	return d.blocks[blockIdx].cycles, nil
}

// SetCycles pre-ages a block (lifetime experiments fast-forward wear
// without replaying a million programs).
func (d *Device) SetCycles(blockIdx int, cycles float64) error {
	if blockIdx < 0 || blockIdx >= len(d.blocks) {
		return fmt.Errorf("nand: block %d out of range", blockIdx)
	}
	if cycles < 0 {
		return fmt.Errorf("nand: negative cycle count %g", cycles)
	}
	d.blocks[blockIdx].cycles = cycles
	return nil
}

// LastOpDuration returns the modelled duration of the most recent
// operation (program: full ISPP run; read: array-to-register time tR;
// erase: block erase time).
func (d *Device) LastOpDuration() time.Duration { return d.lastOpDuration }

// Erase wipes a block, incrementing its wear.
func (d *Device) Erase(blockIdx int) error {
	if blockIdx < 0 || blockIdx >= len(d.blocks) {
		return fmt.Errorf("nand: block %d out of range", blockIdx)
	}
	b := &d.blocks[blockIdx]
	for i := range b.pages {
		b.pages[i] = page{}
	}
	b.cycles++
	b.reads = 0 // erase heals read-disturb stress
	d.lastOpDuration = d.cal.TEraseOp
	return nil
}

// pageAt validates and returns a page pointer.
func (d *Device) pageAt(blockIdx, pageIdx int) (*page, *block, error) {
	if blockIdx < 0 || blockIdx >= len(d.blocks) {
		return nil, nil, fmt.Errorf("nand: block %d out of range", blockIdx)
	}
	b := &d.blocks[blockIdx]
	if pageIdx < 0 || pageIdx >= len(b.pages) {
		return nil, nil, fmt.Errorf("nand: page %d out of range", pageIdx)
	}
	return &b.pages[pageIdx], b, nil
}

// Program writes data+spare into a page using the selected algorithm.
// The page must be erased (never re-programmed without erase). The
// modelled duration comes from the ISPP timing statistics for the
// algorithm at the block's wear.
func (d *Device) Program(blockIdx, pageIdx int, data, spare []byte, alg Algorithm) (ProgramResult, error) {
	p, b, err := d.pageAt(blockIdx, pageIdx)
	if err != nil {
		return ProgramResult{}, err
	}
	if p.written {
		return ProgramResult{}, fmt.Errorf("nand: page %d.%d programmed twice without erase", blockIdx, pageIdx)
	}
	if len(data) > d.cal.PageDataBytes {
		return ProgramResult{}, fmt.Errorf("nand: data %d bytes exceeds page size %d", len(data), d.cal.PageDataBytes)
	}
	if len(spare) > d.cal.PageSpareBytes {
		return ProgramResult{}, fmt.Errorf("nand: spare %d bytes exceeds spare area %d", len(spare), d.cal.PageSpareBytes)
	}
	p.data = append([]byte(nil), data...)
	p.spare = append([]byte(nil), spare...)
	p.written = true
	d.programSeq++
	p.seq = d.programSeq
	p.alg = alg
	p.cyclesAtWrite = b.cycles
	p.writtenAtHours = d.clockHours
	res := EstimateProgram(d.cal, alg, d.cal.Age(b.cycles))
	d.lastOpDuration = res.Duration
	return res, nil
}

// WrittenAlgorithm returns the program algorithm a page was written with
// (controllers key their per-algorithm RBER telemetry on this).
func (d *Device) WrittenAlgorithm(blockIdx, pageIdx int) (Algorithm, error) {
	p, _, err := d.pageAt(blockIdx, pageIdx)
	if err != nil {
		return 0, err
	}
	if !p.written {
		return 0, fmt.Errorf("nand: page %d.%d not written", blockIdx, pageIdx)
	}
	return p.alg, nil
}

// Read returns the page content with bit errors injected per the analytic
// RBER of the algorithm the page was written with, at the block's current
// wear. tR (array-to-register time) is modelled as the paper's 75 µs.
func (d *Device) Read(blockIdx, pageIdx int) (data, spare []byte, err error) {
	return d.ReadAt(blockIdx, pageIdx, 0)
}

// ReadAt senses a page at read-retry ladder step (0 = the nominal
// references; higher steps shift the references per the calibrated
// retry model, recovering retention-drift errors). The returned data and
// spare slices share one backing array (data first, spare adjacent).
func (d *Device) ReadAt(blockIdx, pageIdx, step int) (data, spare []byte, err error) {
	// Program bounds every page at PageDataBytes+PageSpareBytes, so one
	// calibration-sized buffer fits any page without a pre-lookup.
	buf := make([]byte, d.cal.PageDataBytes+d.cal.PageSpareBytes)
	nData, nSpare, err := d.ReadInto(blockIdx, pageIdx, step, buf)
	if err != nil {
		return nil, nil, err
	}
	return buf[:nData], buf[nData : nData+nSpare], nil
}

// RetrySteps returns the calibrated read-retry ladder depth.
func (d *Device) RetrySteps() int { return d.stress.RetrySteps }

// Stress returns the device's stress model configuration.
func (d *Device) Stress() StressConfig { return d.stress }

// SetStress replaces the stress model (tests and ablations).
func (d *Device) SetStress(s StressConfig) { d.stress = s }

// ReadInto is the allocation-free read path: it senses the page at
// retry ladder step and writes data followed immediately by spare into
// buf — exactly the codeword layout the controller decodes — returning
// the two lengths. buf must hold len(data)+len(spare) bytes; every
// sense, retries included, counts against the block's read-disturb
// stress and pays one tR.
func (d *Device) ReadInto(blockIdx, pageIdx, step int, buf []byte) (nData, nSpare int, err error) {
	p, b, err := d.pageAt(blockIdx, pageIdx)
	if err != nil {
		return 0, 0, err
	}
	if !p.written {
		return 0, 0, fmt.Errorf("nand: read of unwritten page %d.%d", blockIdx, pageIdx)
	}
	if step < 0 {
		return 0, 0, fmt.Errorf("nand: negative read-retry step %d", step)
	}
	nData, nSpare = len(p.data), len(p.spare)
	if len(buf) < nData+nSpare {
		return 0, 0, fmt.Errorf("nand: read buffer %d bytes, page %d.%d needs %d",
			len(buf), blockIdx, pageIdx, nData+nSpare)
	}
	b.reads++
	rber := d.cal.RecoveredRBER(d.stress, p.alg, b.cycles, b.reads,
		d.clockHours-p.writtenAtHours, step)
	flips := d.corruptInto(buf[:nData], p.data, rber)
	flips += d.corruptInto(buf[nData:nData+nSpare], p.spare, rber)
	d.lastSenseFlips, d.lastSenseSeq = flips, p.seq
	d.lastOpDuration = PageReadTime
	return nData, nSpare, nil
}

// LastProgramSeq returns the content stamp of the most recent Program.
func (d *Device) LastProgramSeq() uint64 { return d.programSeq }

// LastSense reports the most recent ReadInto: the content stamp of the
// page it sensed and the number of bit errors injected into the
// returned buffer. flips == 0 means the buffer is byte-identical to the
// stored content — the observation behind the controller's clean-read
// decode short-circuit.
func (d *Device) LastSense() (seq uint64, flips int) {
	return d.lastSenseSeq, d.lastSenseFlips
}

// PageReadTime is the array-to-page-register sensing time tR; the paper
// quotes 75 µs for the Micron MLC part it references [27].
const PageReadTime = 75 * time.Microsecond

// corruptInto copies src into dst (equal length) and flips each bit
// independently with probability rber: the binomial error count is
// sampled, then positions drawn uniformly into the device's reusable
// scratch — the draw consumes the same RNG stream as a fresh SampleK,
// so injected error patterns are reproducible across both paths. It
// returns the number of bits flipped.
func (d *Device) corruptInto(dst, src []byte, rber float64) int {
	copy(dst, src)
	nbits := len(src) * 8
	if nbits == 0 {
		return 0
	}
	nerr := d.rng.Binomial(nbits, rber)
	d.errPos = d.rng.SampleKAppend(d.errPos[:0], nbits, nerr)
	for _, pos := range d.errPos {
		dst[pos/8] ^= 1 << uint(7-pos%8)
	}
	return nerr
}

// EstimateProgram returns the expected program-operation statistics for
// the algorithm at the given wear without running the Monte-Carlo array:
// a deterministic closed-form twin of the ISPP engine used on the fast
// device path (its constants are validated against the array simulator in
// the package tests).
func EstimateProgram(cal Calibration, alg Algorithm, aged AgedParams) ProgramResult {
	// Pulses to bring the slowest target level (L3) to verify: ramp from
	// the first landing (VStart - K) to VFY3, plus the slow-cell tail.
	firstLand := cal.VStart - cal.KOffsetMu
	span := cal.VFY[2] - firstLand + 3*cal.KOffsetSigma + 2*aged.KSlowTail
	pulses := int(span/cal.DeltaISPP) + 2
	// DV: cells cross the last DVPreOffset volts in fine steps, and
	// wear-induced injection noise makes them dither around the
	// pre-verify threshold, lengthening the fine phase.
	fine := cal.DeltaISPP * cal.DVStepFactor
	dvExtra := (cal.DVPreOffset/fine - cal.DVPreOffset/cal.DeltaISPP) *
		(1 + cal.DVAgingTimeCoef*aged.Wear)
	if alg == ISPPDV {
		pulses += int(dvExtra + 0.5)
	}
	if mp := cal.MaxPulses(); pulses > mp {
		pulses = mp
	}
	// Verify ops: levels deactivate as the ramp passes them. Level Li
	// stays active for roughly (VFYi - firstLand)/Delta pulses.
	verifies := 0
	for _, vfy := range cal.VFY {
		lv := int((vfy-firstLand+3*cal.KOffsetSigma+2*aged.KSlowTail)/cal.DeltaISPP) + 1
		if alg == ISPPDV {
			lv += int(dvExtra + 0.5)
		}
		if lv > pulses {
			lv = pulses
		}
		verifies += lv
	}
	res := ProgramResult{
		Algorithm: alg,
		Pulses:    pulses,
		Verifies:  verifies,
		MaxVCG:    cal.VStart + float64(pulses-1)*cal.DeltaISPP,
	}
	dur := cal.TLoad + time.Duration(pulses)*cal.TPulse + time.Duration(verifies)*cal.TVerify
	if alg == ISPPDV {
		res.PreVerifies = verifies
		dur += time.Duration(verifies) * cal.TVerify
	}
	res.Duration = dur
	return res
}
