package nand

import "time"

// ProgramResult summarises one page-program operation: the pulse/verify
// counts and waveform timeline that the throughput (Fig. 9) and power
// (Fig. 6) analyses consume.
type ProgramResult struct {
	Algorithm   Algorithm
	Pulses      int
	Verifies    int // final-verify operations (SV and DV)
	PreVerifies int // DV pre-verify operations
	MaxVCG      float64
	Duration    time.Duration
	// Failures counts cells still unverified when the pump ceiling was
	// reached — the program-status-fail path of a real device.
	Failures int
	// Timeline is the phase-by-phase waveform for the HV power model.
	Timeline []Phase
}

// cellState tracks per-cell progress through one program operation.
type cellState uint8

const (
	csInhibited cellState = iota // target reached (or target L0): program-inhibit
	csCoarse                     // full-step ISPP
	csFine                       // DV only: passed pre-verify, reduced step
)

// runISPP executes the pulse/verify loop shared by both algorithms
// (paper §5): apply a gate pulse to all non-inhibited cells, then verify
// each still-active level and inhibit cells that reached their target.
// ISPP-DV adds, per active level, a pre-verify at VFY - DVPreOffset; cells
// beyond it continue with a bit-line-biased (reduced effective step)
// pulse, compacting the final distribution.
func runISPP(p *PageSim, targets []Level, alg Algorithm, aged AgedParams) ProgramResult {
	cal := p.cal
	res := ProgramResult{Algorithm: alg}

	state := make([]cellState, len(targets))
	// Per-operation slow-cell tail: oxide traps make some cells need
	// more overdrive as the device ages.
	kEff := make([]float64, len(targets))
	active := 0
	for i, tgt := range targets {
		kEff[i] = p.k[i]
		if aged.KSlowTail > 0 {
			tail := p.rng.NormMuSigma(0, aged.KSlowTail)
			if tail > 0 {
				kEff[i] += tail
			}
		}
		if tgt == L0 {
			state[i] = csInhibited
		} else {
			state[i] = csCoarse
			active++
		}
	}

	res.Timeline = append(res.Timeline, Phase{Kind: PhaseLoad, Duration: cal.TLoad})
	res.Duration += cal.TLoad
	if active == 0 {
		return res
	}

	fineStep := cal.DeltaISPP * cal.DVStepFactor
	vcg := cal.VStart
	for pulse := 0; pulse < cal.MaxPulses() && active > 0; pulse++ {
		// --- program pulse ---
		res.Pulses++
		res.MaxVCG = vcg
		res.Timeline = append(res.Timeline, Phase{
			Kind:       PhaseProgram,
			Duration:   cal.TPulse,
			VCG:        vcg,
			ActiveFrac: float64(active) / float64(len(targets)),
		})
		res.Duration += cal.TPulse
		for i := range targets {
			switch state[i] {
			case csCoarse:
				land := vcg - kEff[i] + p.rng.NormMuSigma(0, aged.InjSigma)
				if land > p.vth[i] {
					p.vth[i] = land
				}
			case csFine:
				// Bit-line bias throttles tunnelling: the cell advances
				// by at most the reduced step regardless of overdrive.
				land := vcg - kEff[i] + p.rng.NormMuSigma(0, aged.InjSigma)
				capped := p.vth[i] + fineStep + p.rng.NormMuSigma(0, aged.InjSigma*cal.DVStepFactor)
				if land > capped {
					land = capped
				}
				if land > p.vth[i] {
					p.vth[i] = land
				}
			}
		}

		// --- verify phases, per level still holding active cells ---
		for lvl := L1; lvl <= L3; lvl++ {
			hasActive := false
			for i, tgt := range targets {
				if tgt == lvl && state[i] != csInhibited {
					hasActive = true
					break
				}
			}
			if !hasActive {
				continue
			}
			vfy := cal.VerifyTarget(lvl)

			if alg == ISPPDV {
				// Pre-verify at VFY - DVPreOffset moves coarse cells
				// beyond it into the fine (bit-line biased) regime.
				res.PreVerifies++
				res.Timeline = append(res.Timeline, Phase{
					Kind: PhaseVerify, Duration: cal.TVerify, Level: lvl,
				})
				res.Duration += cal.TVerify
				pre := vfy - cal.DVPreOffset
				for i, tgt := range targets {
					if tgt == lvl && state[i] == csCoarse &&
						p.vth[i]+p.rng.NormMuSigma(0, aged.ReadNoise) >= pre {
						state[i] = csFine
					}
				}
			}

			// Final verify: cells at/above VFY are program-inhibited.
			res.Verifies++
			res.Timeline = append(res.Timeline, Phase{
				Kind: PhaseVerify, Duration: cal.TVerify, Level: lvl,
			})
			res.Duration += cal.TVerify
			for i, tgt := range targets {
				if tgt == lvl && state[i] != csInhibited &&
					p.vth[i]+p.rng.NormMuSigma(0, aged.ReadNoise) >= vfy {
					state[i] = csInhibited
					active--
				}
			}
		}

		vcg += cal.DeltaISPP
		if vcg > cal.VEnd {
			break
		}
	}

	res.Failures = active
	return res
}
