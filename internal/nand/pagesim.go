package nand

import (
	"fmt"

	"xlnand/internal/stats"
)

// PageSim is the Monte-Carlo cell array for one flash page: every cell
// carries a persistent gate-coupling offset K (its manufacturing
// identity: geometry, oxide and doping variations, paper §5.1) and a
// current threshold voltage. Programming runs the real ISPP pulse train;
// reading applies retention shift, cell-to-cell interference and sensing
// noise before classifying against R1-R3.
//
// PageSim is not safe for concurrent use; it owns its RNG stream.
type PageSim struct {
	cal Calibration
	rng *stats.RNG

	k   []float64 // per-cell coupling offset VTH = VCG - K in steady state
	vth []float64 // current threshold voltage
	// programmed tracks the level each cell was last programmed to, so
	// reads can model retention shift proportionally.
	programmed []Level
	erased     bool

	// lvlScratch backs ReadBytes-style reads that need a level buffer but
	// hand back bytes; PageSim is single-goroutine by contract, so one
	// buffer serves every read.
	lvlScratch []Level
	// noiseScratch batches the per-cell sensing-noise draws of one read
	// so the classification sweep below runs free of RNG calls.
	noiseScratch []float64
}

// NewPageSim builds a page of cells cells with manufacturing variability
// drawn from the calibration's fresh distributions.
func NewPageSim(cal Calibration, cells int, rng *stats.RNG) *PageSim {
	if cells <= 0 {
		panic("nand: page must have at least one cell")
	}
	p := &PageSim{
		cal:        cal,
		rng:        rng,
		k:          make([]float64, cells),
		vth:        make([]float64, cells),
		programmed: make([]Level, cells),
	}
	for i := range p.k {
		p.k[i] = rng.NormMuSigma(cal.KOffsetMu, cal.KOffsetSigma)
	}
	return p
}

// Cells returns the number of cells on the page.
func (p *PageSim) Cells() int { return len(p.k) }

// VTH returns the current threshold voltage of cell i.
func (p *PageSim) VTH(i int) float64 { return p.vth[i] }

// VTHs returns a copy of all threshold voltages (for distribution
// inspection and Fig. 4/5 style analysis).
func (p *PageSim) VTHs() []float64 {
	return append([]float64(nil), p.vth...)
}

// Erase returns every cell to the L0 distribution (paper §5: "An Erase
// operation places all the cells within a block on the L0 level").
func (p *PageSim) Erase(aged AgedParams) {
	for i := range p.vth {
		p.vth[i] = p.rng.NormMuSigma(p.cal.EraseMu, aged.EraseSigma)
		p.programmed[i] = L0
	}
	p.erased = true
}

// Program runs the ISPP engine for the given per-cell target levels.
// The page must have been erased since the last Program; programming a
// non-erased page is a usage error (the controller enforces erase-before-
// program), reported rather than silently mis-simulated.
func (p *PageSim) Program(targets []Level, alg Algorithm, aged AgedParams) (ProgramResult, error) {
	if len(targets) != len(p.k) {
		return ProgramResult{}, fmt.Errorf("nand: %d targets for %d cells", len(targets), len(p.k))
	}
	if !p.erased {
		return ProgramResult{}, fmt.Errorf("nand: program on non-erased page")
	}
	p.erased = false
	res := runISPP(p, targets, alg, aged)
	p.applyCCI()
	for i, tgt := range targets {
		p.programmed[i] = tgt
	}
	return res, nil
}

// applyCCI models cell-to-cell interference: a fraction of each
// neighbour's programming swing couples onto the victim's floating gate
// (paper §5.1 "Cell-to-Cell interference caused by cross-talk between
// adjacent floating gates").
func (p *PageSim) applyCCI() {
	if p.cal.CCICoupling == 0 || len(p.vth) < 3 {
		return
	}
	// Walking left to right, only vth[i-1] has been disturbed by the time
	// cell i is visited, so a single rolling copy of the previous cell's
	// pre-CCI voltage replaces the full-page clone. The arithmetic below
	// is term-for-term the cloned version's, so trajectories are
	// bit-identical.
	prev := 0.0
	for i := range p.vth {
		cur := p.vth[i]
		var swing float64
		var nb int
		if i > 0 {
			swing += prev - p.cal.EraseMu
			nb++
		}
		if i < len(p.vth)-1 {
			swing += p.vth[i+1] - p.cal.EraseMu
			nb++
		}
		if nb > 0 {
			// Coupling is halved per neighbour; only positive swings
			// (programmed neighbours) disturb.
			s := swing / float64(nb)
			if s > 0 {
				p.vth[i] += p.cal.CCICoupling * s * 0.5 * p.rng.Float64()
			}
		}
		prev = cur
	}
}

// ReadLevels senses every cell and classifies it against the read
// references R1-R3 shifted by the per-boundary offset triple (the
// staged read-retry knob; ReadOffsets{} is the nominal read), applying
// the aged retention shift (programmed levels drift down) and sensing
// noise. The stored VTH is not modified: retention is modelled at read
// time so repeated reads at different ages reuse one programmed state.
func (p *PageSim) ReadLevels(aged AgedParams, off ReadOffsets) []Level {
	return p.ReadLevelsInto(make([]Level, len(p.vth)), aged, off)
}

// ReadLevelsInto is the allocation-free sensing path: it classifies
// every cell into dst (which must hold Cells() levels) and returns it.
// The retention shift per programmed level and the shifted R1-R3
// boundaries are hoisted out of the per-cell loop, the sensing-noise
// draws are batched into page-owned scratch in cell order (the RNG
// consumes exactly the stream the scalar path did, so every golden
// trajectory survives), and the classification itself is a branch-free
// sweep: level = (eff>=b0)+(eff>=b1)+(eff>=b2) as integer adds.
//
// The sum form is equivalent to the historical first-match switch
// (eff < r0 -> L0, eff < r1 -> L1, ...) only against non-decreasing
// boundaries, and a read-retry offset triple may produce any ordering
// of r0..r2 — so the sweep classifies against the running maxima
// b0 <= b1 <= b2, which reproduce first-match semantics exactly for
// every finite input.
func (p *PageSim) ReadLevelsInto(dst []Level, aged AgedParams, off ReadOffsets) []Level {
	if len(dst) != len(p.vth) {
		panic(fmt.Sprintf("nand: ReadLevelsInto dst %d for %d cells", len(dst), len(p.vth)))
	}
	// Higher levels store more charge and leak proportionally more.
	var shift [numLevels]float64
	for l := L1; l < numLevels; l++ {
		shift[l] = aged.RetShift * (1 + 0.5*float64(l-1))
	}
	b0 := p.cal.Read[0] + off[0]
	b1 := p.cal.Read[1] + off[1]
	b2 := p.cal.Read[2] + off[2]
	if b1 < b0 {
		b1 = b0
	}
	if b2 < b1 {
		b2 = b1
	}
	noise := aged.ReadNoise
	if cap(p.noiseScratch) < len(p.vth) {
		p.noiseScratch = make([]float64, len(p.vth))
	}
	ns := p.noiseScratch[:len(p.vth)]
	for i := range ns {
		ns[i] = p.rng.NormMuSigma(0, noise)
	}
	prog := p.programmed
	for i, v := range p.vth {
		eff := v - shift[prog[i]] + ns[i]
		dst[i] = Level(b2u(eff >= b0) + b2u(eff >= b1) + b2u(eff >= b2))
	}
	return dst
}

// b2u is the branch-free comparison accumulator of the classification
// sweep (compiles to a flag set, not a jump).
func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// ReadBytes reads the page back as data bytes via the Gray mapping. It
// is a thin allocating shim over ReadBytesInto.
func (p *PageSim) ReadBytes(aged AgedParams, off ReadOffsets) []byte {
	return p.ReadBytesInto(make([]byte, (len(p.vth)+3)/4), aged, off)
}

// ReadBytesInto reads the page back as data bytes into dst, which must
// hold Cells()/4 bytes (rounded up). The intermediate level buffer is
// page-owned scratch, reused read over read.
func (p *PageSim) ReadBytesInto(dst []byte, aged AgedParams, off ReadOffsets) []byte {
	if cap(p.lvlScratch) < len(p.vth) {
		p.lvlScratch = make([]Level, len(p.vth))
	}
	levels := p.ReadLevelsInto(p.lvlScratch[:len(p.vth)], aged, off)
	return LevelsToBytesInto(dst, levels)
}
