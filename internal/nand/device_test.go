package nand

import (
	"testing"

	"xlnand/internal/stats"
)

func testDevice(t *testing.T) *Device {
	t.Helper()
	cal := DefaultCalibration()
	return NewDevice(cal, 4, 77)
}

func TestDeviceGeometry(t *testing.T) {
	d := testDevice(t)
	if d.Blocks() != 4 || d.PagesPerBlock() != 64 {
		t.Fatalf("geometry %d blocks x %d pages", d.Blocks(), d.PagesPerBlock())
	}
}

func TestDeviceProgramReadRoundTrip(t *testing.T) {
	d := testDevice(t)
	r := stats.NewRNG(1)
	data := make([]byte, 4096)
	spare := make([]byte, 64)
	for i := range data {
		data[i] = byte(r.Intn(256))
	}
	for i := range spare {
		spare[i] = byte(r.Intn(256))
	}
	if _, err := d.Program(0, 0, data, spare, ISPPSV); err != nil {
		t.Fatal(err)
	}
	gotData, gotSpare, err := d.Read(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh device RBER 1e-6: with ~33 kbit expect ~0.03 flips, i.e.
	// almost always byte-identical; tolerate a couple of flipped bits.
	if diff := bitDiff(gotData, data) + bitDiff(gotSpare, spare); diff > 3 {
		t.Fatalf("%d bit flips on fresh device read", diff)
	}
}

func bitDiff(a, b []byte) int {
	n := 0
	for i := range a {
		x := a[i] ^ b[i]
		for ; x != 0; x &= x - 1 {
			n++
		}
	}
	return n
}

func TestDeviceRejectsDoubleProgram(t *testing.T) {
	d := testDevice(t)
	data := make([]byte, 16)
	if _, err := d.Program(0, 3, data, nil, ISPPSV); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Program(0, 3, data, nil, ISPPSV); err == nil {
		t.Fatal("double program without erase accepted")
	}
	if err := d.Erase(0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Program(0, 3, data, nil, ISPPSV); err != nil {
		t.Fatalf("program after erase rejected: %v", err)
	}
}

func TestDeviceEraseIncrementsWear(t *testing.T) {
	d := testDevice(t)
	c0, _ := d.Cycles(1)
	if err := d.Erase(1); err != nil {
		t.Fatal(err)
	}
	c1, _ := d.Cycles(1)
	if c1 != c0+1 {
		t.Fatalf("erase wear %v -> %v", c0, c1)
	}
}

func TestDeviceBoundsChecking(t *testing.T) {
	d := testDevice(t)
	if _, err := d.Cycles(-1); err == nil {
		t.Fatal("negative block accepted")
	}
	if _, err := d.Cycles(4); err == nil {
		t.Fatal("out-of-range block accepted")
	}
	if err := d.Erase(99); err == nil {
		t.Fatal("erase of bad block accepted")
	}
	if _, err := d.Program(0, 64, nil, nil, ISPPSV); err == nil {
		t.Fatal("out-of-range page accepted")
	}
	if _, _, err := d.Read(0, 0); err == nil {
		t.Fatal("read of unwritten page accepted")
	}
	if err := d.SetCycles(0, -1); err == nil {
		t.Fatal("negative cycles accepted")
	}
	if _, err := d.Program(0, 0, make([]byte, 5000), nil, ISPPSV); err == nil {
		t.Fatal("oversized data accepted")
	}
	if _, err := d.Program(0, 0, nil, make([]byte, 500), ISPPSV); err == nil {
		t.Fatal("oversized spare accepted")
	}
}

func TestDeviceAgedReadsAreNoisier(t *testing.T) {
	cal := DefaultCalibration()
	d := NewDevice(cal, 2, 5)
	data := make([]byte, 4096)
	if err := d.SetCycles(1, 1e6); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Program(0, 0, data, nil, ISPPSV); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Program(1, 0, data, nil, ISPPSV); err != nil {
		t.Fatal(err)
	}
	freshFlips, agedFlips := 0, 0
	for i := 0; i < 20; i++ {
		fd, _, err := d.Read(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		ad, _, err := d.Read(1, 0)
		if err != nil {
			t.Fatal(err)
		}
		freshFlips += bitDiff(fd, data)
		agedFlips += bitDiff(ad, data)
	}
	// Aged block at RBER 1e-3: ~33 errors/page/read; fresh ~0.03.
	if agedFlips <= freshFlips {
		t.Fatalf("aged reads (%d flips) not noisier than fresh (%d)", agedFlips, freshFlips)
	}
	if agedFlips < 200 {
		t.Fatalf("aged flips %d implausibly low for RBER 1e-3", agedFlips)
	}
}

func TestDeviceDVReadsCleanerThanSV(t *testing.T) {
	cal := DefaultCalibration()
	d := NewDevice(cal, 2, 6)
	data := make([]byte, 4096)
	for b := 0; b < 2; b++ {
		if err := d.SetCycles(b, 1e6); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Program(0, 0, data, nil, ISPPSV); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Program(1, 0, data, nil, ISPPDV); err != nil {
		t.Fatal(err)
	}
	sv, dv := 0, 0
	for i := 0; i < 30; i++ {
		a, _, _ := d.Read(0, 0)
		b, _, _ := d.Read(1, 0)
		sv += bitDiff(a, data)
		dv += bitDiff(b, data)
	}
	if dv*5 > sv {
		t.Fatalf("DV flips %d not ≈ one order below SV flips %d", dv, sv)
	}
}

func TestDeviceOperationDurations(t *testing.T) {
	d := testDevice(t)
	data := make([]byte, 4096)
	if _, err := d.Program(0, 0, data, nil, ISPPDV); err != nil {
		t.Fatal(err)
	}
	prog := d.LastOpDuration()
	if _, _, err := d.Read(0, 0); err != nil {
		t.Fatal(err)
	}
	read := d.LastOpDuration()
	if read != PageReadTime {
		t.Fatalf("read duration %v, want tR=%v", read, PageReadTime)
	}
	if prog <= read {
		t.Fatalf("program %v not slower than read %v", prog, read)
	}
}

func TestCorruptStatistics(t *testing.T) {
	d := &Device{rng: stats.NewRNG(7)}
	src := make([]byte, 4096)
	const rber = 1e-3
	total := 0
	const reps = 50
	for i := 0; i < reps; i++ {
		dst := make([]byte, len(src))
		d.corruptInto(dst, src, rber)
		total += bitDiff(dst, src)
	}
	mean := float64(total) / reps
	want := 4096 * 8 * rber // ≈ 32.8
	if mean < want*0.7 || mean > want*1.3 {
		t.Fatalf("corrupt injects %.1f errors/page, want ≈ %.1f", mean, want)
	}
}

func TestCorruptEmpty(t *testing.T) {
	d := &Device{rng: stats.NewRNG(8)}
	d.corruptInto(nil, nil, 0.5) // must not panic or draw from the RNG
}
