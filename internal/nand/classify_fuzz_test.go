package nand

import (
	"bytes"
	"math"
	"testing"

	"xlnand/internal/stats"
)

// FuzzClassifySweep pins the word-parallel sensing kernel to its scalar
// predecessor: two identical pages built from the same seed are read
// once through ReadLevelsInto (batched noise scratch, branch-free
// comparison sweep against running-max boundaries, word-parallel Gray
// packer) and once through a cell-at-a-time replica of the historical
// path (interleaved noise draw, first-match ClassifyVTHShifted,
// bit-by-bit packing). Levels and packed bytes must match cell for
// cell — including non-monotone read-retry offset triples, aged
// retention shifts and page sizes with a partial tail word.
func FuzzClassifySweep(f *testing.F) {
	f.Add(uint64(1), 0.0, 0.0, 0.0, 0.0)
	f.Add(uint64(42), -0.4, 0.1, -0.9, 1e5)
	f.Add(uint64(7), 2.0, -3.0, 1.0, 9e5) // offsets that reorder the boundaries
	f.Fuzz(func(t *testing.T, seed uint64, o0, o1, o2, cycles float64) {
		for _, o := range []float64{o0, o1, o2} {
			if math.IsNaN(o) || math.Abs(o) > 50 {
				t.Skip("offset outside the finite sensing range")
			}
		}
		if math.IsNaN(cycles) || cycles < 0 || cycles > 2e7 {
			t.Skip("cycles outside the modelled range")
		}
		cal := DefaultCalibration()
		aged := cal.Age(cycles)
		off := ReadOffsets{o0, o1, o2}
		cells := 64 + int(seed%97) // non-multiples of 32 exercise the tail packer

		// Two bit-identical pages: same construction, erase and program
		// stream, so their RNGs sit at the same position before the read.
		build := func() *PageSim {
			p := NewPageSim(cal, cells, stats.NewRNG(seed))
			p.Erase(aged)
			data := make([]byte, (cells+3)/4)
			drng := stats.NewRNG(seed ^ 0x9e3779b97f4a7c15)
			for i := range data {
				data[i] = byte(drng.Intn(256))
			}
			if _, err := p.Program(TargetLevels(data)[:cells], ISPPSV, aged); err != nil {
				t.Fatal(err)
			}
			return p
		}
		fast, ref := build(), build()

		got := fast.ReadLevelsInto(make([]Level, cells), aged, off)
		gotBytes := LevelsToBytes(got)

		// Scalar replica of the read: one noise draw per cell in stream
		// order, the retention model verbatim, first-match classification.
		var shift [numLevels]float64
		for l := L1; l < numLevels; l++ {
			shift[l] = aged.RetShift * (1 + 0.5*float64(l-1))
		}
		want := make([]Level, cells)
		for i := 0; i < cells; i++ {
			eff := ref.vth[i] - shift[ref.programmed[i]] + ref.rng.NormMuSigma(0, aged.ReadNoise)
			want[i] = cal.ClassifyVTHShifted(eff, off)
		}
		wantBytes := make([]byte, (cells+3)/4)
		for i, l := range want {
			upper, lower := l.Bits()
			wantBytes[i/4] |= upper << uint(7-2*(i%4))
			wantBytes[i/4] |= lower << uint(6-2*(i%4))
		}

		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cell %d: sweep classified %v, scalar reference %v (seed %d off %v cycles %g)",
					i, got[i], want[i], seed, off, cycles)
			}
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("word-parallel Gray packing diverged from scalar packing (seed %d, %d cells)", seed, cells)
		}
	})
}
