package nand

import "math"

// This file models staged read-retry with read-reference calibration —
// the recovery mechanism of Cai et al. ("Data Retention in MLC NAND
// Flash Memory: Characterization, Optimization, and Recovery", HPCA'15):
// programmed V_TH distributions drift downward as stored charge leaks,
// so a page that fails ECC at the nominal R1-R3 references often reads
// back correctly once the references are shifted toward the drifted
// distributions. The shift that minimises the raw error count is
// predictable from the error climate (wear and retention age), which is
// what lets a controller cache calibrated offsets instead of blindly
// walking the ladder.
//
// Both fidelity layers participate:
//
//   - PageSim.ReadLevels takes a ReadOffsets triple and classifies
//     against the shifted references — the Monte-Carlo ground truth;
//   - the analytic device path uses RecoveredRBER: an effective-RBER
//     model anchored so a fresh page gains nothing from the ladder while
//     an aged, retention-baked page recovers roughly an order of
//     magnitude at its optimal step.

// ReadOffsets shifts the three MLC read references R1-R3 by the given
// voltages (negative = toward the erased state, the direction retention
// drift requires). The zero value is the nominal read.
type ReadOffsets [3]float64

// retryBoundaryWeight scales one ladder step across the three
// boundaries: higher levels store more charge and leak proportionally
// more (the PageSim retention model shifts L1/L2/L3 by 1.0/1.5/2.0 ×
// RetShift), so the boundary between L1|L2 moves ~1.25× and L2|L3 ~1.75×
// as far as L0|L1 per calibration step.
var retryBoundaryWeight = [3]float64{1.0, 1.25, 1.75}

// RetryOffsets returns the read-reference offset triple of calibrated
// ladder step k (step 0 is the nominal read). Steps are clamped below at
// zero; the ladder depth itself is a StressConfig property.
func (c Calibration) RetryOffsets(s StressConfig, step int) ReadOffsets {
	if step < 0 {
		step = 0
	}
	var off ReadOffsets
	for i := range off {
		off[i] = -float64(step) * s.RetryStepV * retryBoundaryWeight[i]
	}
	return off
}

// OptimalRetryStep returns the ladder step whose reference shift best
// matches the V_TH drift a page has accumulated: the cycling drift the
// Age model already applies (AgingShift per decade of cycling) plus the
// retention drift (per decade of storage time, amplified by wear — aged
// oxide leaks faster), less the slack the fresh read margins absorb,
// divided by the per-step reference shift and clamped to the calibrated
// ladder. Fresh pages sit at step 0: there is nothing to recover.
func (c Calibration) OptimalRetryStep(s StressConfig, cycles, retentionHours float64) int {
	if s.RetryStepV <= 0 {
		return 0
	}
	if retentionHours < 0 {
		retentionHours = 0
	}
	aged := c.Age(cycles)
	shift := aged.RetShift +
		s.RetryShiftV*math.Log10(1+retentionHours/s.RetentionRefHours)*(1+aged.Wear) -
		s.RetrySlackV
	if shift <= 0 {
		return 0
	}
	k := int(shift/s.RetryStepV + 0.5)
	if k > s.RetrySteps {
		k = s.RetrySteps
	}
	return k
}

// RecoveredRBER is the effective raw bit error rate of a read at retry
// ladder step k. Step 0 reproduces StressedRBER exactly. For k > 0 the
// retention-driven component of the RBER (the part a reference shift can
// compensate) decays by RetryResidual per step matched to the page's
// optimal offset, floored at RetryFloorFrac of the raw rate (reference
// calibration cannot beat the cycling noise floor by more than about an
// order of magnitude); steps past the optimum over-shift the references
// and grow the error rate again by RetryOvershoot per excess step — a
// mis-predicted offset is worse than the nominal read, which is what
// makes the controller's calibration cache worth maintaining.
func (c Calibration) RecoveredRBER(s StressConfig, alg Algorithm, cycles, reads, retentionHours float64, step int) float64 {
	raw := c.StressedRBER(s, alg, cycles, reads, retentionHours)
	if step <= 0 {
		return raw
	}
	if step > s.RetrySteps {
		step = s.RetrySteps
	}
	if retentionHours < 0 {
		retentionHours = 0
	}
	if reads < 0 {
		reads = 0
	}
	// Irreducible part: the non-drift share of the cycling and disturb
	// errors (injection granularity, erratic cells, sensing noise) plus
	// SEUs. The drift-driven share — retention leakage and the cycling
	// RetShift the Age model applies — is what a matched reference
	// shift removes.
	disturb := s.ReadDisturbCoef * math.Log10(1+reads/s.ReadDisturbRef)
	irreducible := c.RBER(alg, cycles)*(1+disturb)*(1-s.RetryCyclingRecoverable) +
		s.SEUPerBitHour*retentionHours
	if irreducible > raw {
		irreducible = raw
	}
	kOpt := c.OptimalRetryStep(s, cycles, retentionHours)
	matched := step
	if matched > kOpt {
		matched = kOpt
	}
	eff := irreducible + (raw-irreducible)*math.Pow(s.RetryResidual, float64(matched))
	if floor := raw * s.RetryFloorFrac; eff < floor {
		eff = floor
	}
	if over := step - kOpt; over > 0 {
		eff *= math.Pow(s.RetryOvershoot, float64(over))
	}
	return math.Min(eff, c.RBERCeiling)
}
