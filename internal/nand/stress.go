package nand

import "math"

// StressConfig extends the cycling-driven RBER model with the other
// failure mechanisms the paper's introduction lists: program/read
// disturb, data retention and single-event upsets. Cycling remains the
// dominant axis (it is what the paper's evaluation sweeps); these terms
// let lifetime studies include the secondary stresses.
type StressConfig struct {
	// ReadDisturbCoef is the fractional RBER growth per decade of reads
	// accumulated in a block since its last erase (pass-voltage stress
	// on unselected wordlines).
	ReadDisturbCoef float64
	// ReadDisturbRef is the read count where disturb becomes measurable.
	ReadDisturbRef float64
	// RetentionCoef is the fractional RBER growth per decade of
	// retention time (charge detrapping/leakage); wear multiplies it
	// (aged oxide leaks faster).
	RetentionCoef float64
	// RetentionRefHours is the bake time where retention loss becomes
	// measurable on a fresh device.
	RetentionRefHours float64
	// SEUPerBitHour is the random single-event-upset rate (radiation),
	// an additive floor independent of wear.
	SEUPerBitHour float64

	// --- Staged read-retry (read-reference calibration) ---

	// RetrySteps is the calibrated ladder depth the device supports:
	// reads may be retried at reference offsets 1..RetrySteps.
	RetrySteps int
	// RetryStepV is the reference shift of one ladder step at the R1
	// boundary [V] (higher boundaries scale per retryBoundaryWeight).
	RetryStepV float64
	// RetryShiftV is the modelled retention drift per decade of storage
	// time on a fresh device [V]; wear multiplies it. Together with the
	// calibration's cycling drift (AgingShift) it sets the optimal
	// ladder step for a page's (wear, retention) climate.
	RetryShiftV float64
	// RetrySlackV is the drift the fresh read margins absorb before any
	// reference shift pays off [V]: fresh pages have an optimal step of
	// zero.
	RetrySlackV float64
	// RetryCyclingRecoverable is the drift-driven share of the cycling
	// (+ disturb) RBER: the part a matched reference shift can remove.
	// The remainder — injection noise, erratic cells, sensing noise —
	// is the ladder's irreducible floor.
	RetryCyclingRecoverable float64
	// RetryResidual is the fraction of the recoverable (retention-
	// driven) RBER remaining after each matched ladder step.
	RetryResidual float64
	// RetryFloorFrac floors the recovered RBER at this fraction of the
	// raw rate: calibration buys about an order of magnitude, not more.
	RetryFloorFrac float64
	// RetryOvershoot grows the RBER per step past the optimal offset
	// (over-shifted references misclassify cells the other way).
	RetryOvershoot float64

	// --- Soft-sense reads (multi-sense per-bit confidence) ---

	// SoftSenses is the number of component array senses one soft read
	// performs: the center sense at the requested ladder step plus
	// adjacent-reference senses bracketing each read boundary. Every
	// component sense pays one tR and one read-disturb count.
	SoftSenses int
	// SoftCapture is the probability that a cell misread by the center
	// sense lands between the bracketing references — i.e. is flagged
	// low-confidence. Cells whose V_TH drifted across a read boundary
	// sit near it, so most raw errors are captured (Cai et al.'s
	// retention-failure characterisation).
	SoftCapture float64
	// SoftFalseWeak is the probability that a correctly-read cell is
	// flagged low-confidence anyway (cells legitimately near a
	// boundary).
	SoftFalseWeak float64
	// SoftSensesMax caps adaptive soft-sense escalation: a controller
	// may widen a failing soft read from SoftSenses component senses up
	// to this many (3→5→7 with the defaults), each escalation paying
	// its own sensing time and disturb stress. 0 disables escalation
	// (every soft read stays at SoftSenses).
	SoftSensesMax int
}

// DefaultStressConfig returns stress constants in the ranges reported by
// the paper's references ([3] Mielke et al. for disturb/retention trends,
// [6] Irom & Nguyen for SEU).
func DefaultStressConfig() StressConfig {
	return StressConfig{
		ReadDisturbCoef:   0.18,
		ReadDisturbRef:    1e4,
		RetentionCoef:     0.45,
		RetentionRefHours: 500,
		SEUPerBitHour:     1e-13,

		RetrySteps:              6,
		RetryStepV:              0.04,
		RetryShiftV:             0.12,
		RetrySlackV:             0.05,
		RetryCyclingRecoverable: 0.85,
		RetryResidual:           0.35,
		RetryFloorFrac:          0.08,
		RetryOvershoot:          1.15,

		SoftSenses:    3,
		SoftCapture:   0.92,
		SoftFalseWeak: 0.015,
		SoftSensesMax: 7,
	}
}

// StressedRBER composes the cycling RBER with read-disturb, retention and
// SEU contributions:
//
//	RBER = RBER_cyc(alg, N) · (1 + disturb(reads)) · (1 + retention(t, N)) + SEU·t
//
// reads is the block's read count since the last erase; retentionHours is
// the time the data has been stored. The result is clamped to the
// physical ceiling.
func (c Calibration) StressedRBER(s StressConfig, alg Algorithm, cycles, reads, retentionHours float64) float64 {
	base := c.RBER(alg, cycles)
	if reads < 0 {
		reads = 0
	}
	if retentionHours < 0 {
		retentionHours = 0
	}
	disturb := s.ReadDisturbCoef * math.Log10(1+reads/s.ReadDisturbRef)
	wear := c.Age(cycles).Wear
	retention := s.RetentionCoef * math.Log10(1+retentionHours/s.RetentionRefHours) * (1 + wear)
	rber := base*(1+disturb)*(1+retention) + s.SEUPerBitHour*retentionHours
	return math.Min(rber, c.RBERCeiling)
}
