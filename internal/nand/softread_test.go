package nand

import (
	"testing"
	"time"
)

func softRig(t *testing.T) *Device {
	t.Helper()
	return NewDevice(DefaultCalibration(), 2, 99)
}

func softPage(d *Device) ([]byte, []byte) {
	data := make([]byte, d.Calibration().PageDataBytes)
	spare := make([]byte, 64)
	for i := range data {
		data[i] = byte(i * 7)
	}
	for i := range spare {
		spare[i] = byte(i * 13)
	}
	return data, spare
}

// TestReadSoftShape pins the contract: codeword layout identical to
// ReadInto, one LLR per codeword bit with signs matching the hard
// decisions, magnitudes quantised to the two confidence levels, and the
// configured number of component senses reported.
func TestReadSoftShape(t *testing.T) {
	d := softRig(t)
	data, spare := softPage(d)
	if _, err := d.Program(0, 0, data, spare, ISPPSV); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data)+len(spare))
	llr := make([]int8, (len(data)+len(spare))*8)
	nData, nSpare, senses, err := d.ReadSoft(0, 0, 0, buf, llr)
	if err != nil {
		t.Fatal(err)
	}
	if nData != len(data) || nSpare != len(spare) {
		t.Fatalf("lengths %d/%d, want %d/%d", nData, nSpare, len(data), len(spare))
	}
	if senses != d.Stress().SoftSenses {
		t.Fatalf("senses %d, want %d", senses, d.Stress().SoftSenses)
	}
	for i := 0; i < (nData+nSpare)*8; i++ {
		bit := buf[i/8]&(1<<uint(7-i%8)) != 0
		v := llr[i]
		if v != SoftStrongLLR && v != SoftWeakLLR && v != -SoftStrongLLR && v != -SoftWeakLLR {
			t.Fatalf("bit %d: unquantised LLR %d", i, v)
		}
		if bit != (v < 0) {
			t.Fatalf("bit %d: LLR sign %d disagrees with hard decision %v", i, v, bit)
		}
	}
}

// TestReadSoftChargesStress: every component sense counts against the
// block's read-disturb budget and the modelled op time is senses x tR.
func TestReadSoftChargesStress(t *testing.T) {
	d := softRig(t)
	data, spare := softPage(d)
	if _, err := d.Program(0, 0, data, spare, ISPPSV); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data)+len(spare))
	llr := make([]int8, (len(data)+len(spare))*8)
	before, _ := d.BlockReads(0)
	_, _, senses, err := d.ReadSoft(0, 0, 0, buf, llr)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := d.BlockReads(0)
	if after-before != float64(senses) {
		t.Fatalf("soft read charged %g disturb senses, want %d", after-before, senses)
	}
	if want := time.Duration(senses) * PageReadTime; d.LastOpDuration() != want {
		t.Fatalf("soft read took %v, want %v", d.LastOpDuration(), want)
	}
}

// TestReadSoftFlagsErrors: on an aged, retention-baked block the weak
// set must capture the large majority of the actually-wrong bits —
// that coverage is the entire value of the soft path.
func TestReadSoftFlagsErrors(t *testing.T) {
	d := softRig(t)
	data, spare := softPage(d)
	if err := d.SetCycles(0, 1e6); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Program(0, 0, data, spare, ISPPSV); err != nil {
		t.Fatal(err)
	}
	d.AdvanceTime(5e3)
	buf := make([]byte, len(data)+len(spare))
	llr := make([]int8, (len(data)+len(spare))*8)
	nData, nSpare, _, err := d.ReadSoft(0, 0, 0, buf, llr)
	if err != nil {
		t.Fatal(err)
	}
	ref := append(append([]byte(nil), data...), spare...)
	wrong, wrongWeak := 0, 0
	for i := 0; i < (nData+nSpare)*8; i++ {
		got := buf[i/8]&(1<<uint(7-i%8)) != 0
		want := ref[i/8]&(1<<uint(7-i%8)) != 0
		if got != want {
			wrong++
			if llr[i] == SoftWeakLLR || llr[i] == -SoftWeakLLR {
				wrongWeak++
			}
		}
	}
	if wrong < 20 {
		t.Fatalf("baked EOL page has only %d raw errors; stress model broken", wrong)
	}
	if frac := float64(wrongWeak) / float64(wrong); frac < 0.8 {
		t.Fatalf("weak set captures only %.0f%% of the %d errors", frac*100, wrong)
	}
}

// TestReadSoftValidation covers the error paths.
func TestReadSoftValidation(t *testing.T) {
	d := softRig(t)
	data, spare := softPage(d)
	if _, err := d.Program(0, 0, data, spare, ISPPSV); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data)+len(spare))
	llr := make([]int8, (len(data)+len(spare))*8)
	if _, _, _, err := d.ReadSoft(0, 1, 0, buf, llr); err == nil {
		t.Fatal("soft read of unwritten page accepted")
	}
	if _, _, _, err := d.ReadSoft(0, 0, -1, buf, llr); err == nil {
		t.Fatal("negative ladder step accepted")
	}
	if _, _, _, err := d.ReadSoft(0, 0, 0, buf[:10], llr); err == nil {
		t.Fatal("short codeword buffer accepted")
	}
	if _, _, _, err := d.ReadSoft(0, 0, 0, buf, llr[:10]); err == nil {
		t.Fatal("short LLR buffer accepted")
	}
}
