// Package nand models the 2-bit/cell (4LC) NAND flash device of paper §5:
// the threshold-voltage (V_TH) compact model with nanoscale variability,
// the incremental step pulse programming engine in both its single-verify
// (ISPP-SV) and double-verify (ISPP-DV) variants, page read with the
// R1-R3 levels and Gray mapping, block erase, and program/erase-cycling
// aging. It exposes two fidelity layers:
//
//   - an analytic lifetime RBER model calibrated to the paper's Fig. 5
//     (fast; drives the controller simulator and Figs. 7-11), and
//   - a Monte-Carlo cell-array simulator that programs every cell through
//     the actual ISPP pulse train (drives Fig. 4, write-time/pulse
//     accounting for Figs. 6 and 9, and validates the analytic model's
//     shape at measurable corners).
//
// All fitted constants live in Calibration so that every figure flows
// from one table (DESIGN.md §4).
package nand

import "time"

// Algorithm selects the program algorithm of the physical layer — the
// paper's runtime-selectable knob (§5).
type Algorithm int

const (
	// ISPPSV is the standard single-verify incremental step pulse
	// programming algorithm: one verify per target level per pulse.
	ISPPSV Algorithm = iota
	// ISPPDV is the double-verify variant of Miccoli et al. [19]: a
	// pre-verify at a slightly lower voltage modulates the bit-line so
	// the final approach uses a reduced effective step, compacting the
	// programmed distribution at the cost of extra verify time.
	ISPPDV
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case ISPPSV:
		return "ISPP-SV"
	case ISPPDV:
		return "ISPP-DV"
	default:
		return "ISPP-?"
	}
}

// Calibration gathers every fitted constant of the device model. The
// defaults reproduce the paper's anchors; experiments mutate copies to
// run ablations.
type Calibration struct {
	// --- ISPP waveform (paper §5.1: 14->19 V, 250 mV steps) ---
	VStart    float64       // first program pulse amplitude [V]
	VEnd      float64       // charge-pump ceiling [V]
	DeltaISPP float64       // nominal program step [V]
	TPulse    time.Duration // program pulse width
	TVerify   time.Duration // one verify (read) operation
	TEraseOp  time.Duration // block erase duration
	TLoad     time.Duration // page-buffer data load (full-sequence strategy)

	// --- MLC level placement (V) ---
	EraseMu    float64    // L0 mean
	EraseSigma float64    // L0 spread (fresh)
	VFY        [3]float64 // verify levels for L1..L3
	Read       [3]float64 // read levels R1..R3
	OverProg   float64    // over-programming limit OP

	// --- DV specifics ---
	DVPreOffset   float64 // pre-verify level below final VFY [V]
	DVStepFactor  float64 // effective step multiplier after pre-verify pass
	DVExtraVerify int     // extra verify ops per still-active level per pulse (1)
	// DVAgingTimeCoef scales how strongly wear lengthens the DV fine
	// phase (noisier cells dither longer around the pre-verify level);
	// drives the 40% -> 48% write-loss growth of Fig. 9.
	DVAgingTimeCoef float64

	// --- Cell variability (fresh device, paper §5.1 list) ---
	KOffsetMu      float64 // mean gate-coupling offset: VTH ~ VCG - K
	KOffsetSigma   float64 // cell-to-cell K spread (geometry, doping, oxide)
	InjectionSigma float64 // per-pulse electron-injection granularity noise [V]
	CCICoupling    float64 // cell-to-cell interference coupling ratio
	ReadNoiseSigma float64 // read comparator + VTH sensing noise [V]

	// --- Aging (program/erase cycling, paper §5.1 "aging effects") ---
	AgingSigmaCoef float64 // multiplicative VTH-spread growth coefficient
	AgingSigmaExp  float64 // exponent of spread growth in cycles
	AgingShift     float64 // retention-like downward shift per decade [V]
	AgingSlowTail  float64 // growth of the slow-cell K tail [V/decade]

	// --- Lifetime RBER model (fit to Fig. 5) ---
	RBERFresh   float64 // SV raw bit error rate at/below RefCycles
	RBERRefCyc  float64 // cycles below which RBER is flat
	RBERExp     float64 // power-law exponent of RBER growth
	DVGain      float64 // SV/DV RBER ratio ("one order of magnitude")
	RBERCeiling float64 // physical ceiling for the model

	// --- Geometry ---
	PageDataBytes  int // user data per page (4 KB)
	PageSpareBytes int // spare area per page
	PagesPerBlock  int
	CellsPerPage   int // data cells: 2 bits/cell
}

// DefaultCalibration returns the constants used throughout the paper
// reproduction (DESIGN.md §4 records the provenance of each value).
func DefaultCalibration() Calibration {
	return Calibration{
		VStart:    14.0,
		VEnd:      19.0,
		DeltaISPP: 0.25,
		TPulse:    25 * time.Microsecond,
		TVerify:   15 * time.Microsecond,
		TEraseOp:  1500 * time.Microsecond,
		TLoad:     50 * time.Microsecond,

		EraseMu:    -3.0,
		EraseSigma: 0.35,
		VFY:        [3]float64{0.8, 1.9, 3.0},
		Read:       [3]float64{0.15, 1.35, 2.45},
		OverProg:   3.9,

		DVPreOffset:     0.30,
		DVStepFactor:    0.50,
		DVExtraVerify:   1,
		DVAgingTimeCoef: 1.20,

		KOffsetMu:      13.8,
		KOffsetSigma:   0.15,
		InjectionSigma: 0.035,
		CCICoupling:    0.06,
		ReadNoiseSigma: 0.02,

		AgingSigmaCoef: 0.020,
		AgingSigmaExp:  0.32,
		AgingShift:     0.020,
		AgingSlowTail:  0.050,

		RBERFresh:   1e-6,
		RBERRefCyc:  100,
		RBERExp:     0.75,
		DVGain:      11.9,
		RBERCeiling: 5e-2,

		PageDataBytes:  4096,
		PageSpareBytes: 224,
		PagesPerBlock:  64,
		CellsPerPage:   4096 * 8 / 2,
	}
}

// PageDataBits returns the protected payload size in bits (the BCH k).
func (c Calibration) PageDataBits() int { return c.PageDataBytes * 8 }

// MaxPulses returns the pulse budget of one program operation: the pump
// ramps from VStart to VEnd in DeltaISPP steps, after which the operation
// fails for still-unverified cells.
func (c Calibration) MaxPulses() int {
	return int((c.VEnd-c.VStart)/c.DeltaISPP+0.5) + 1
}
