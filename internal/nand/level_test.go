package nand

import (
	"bytes"
	"testing"
	"testing/quick"

	"xlnand/internal/stats"
)

func TestGrayMappingIsBijective(t *testing.T) {
	seen := map[uint8]bool{}
	for l := L0; l < numLevels; l++ {
		u, lo := l.Bits()
		key := u<<1 | lo
		if seen[key] {
			t.Fatalf("bit pattern %02b reused", key)
		}
		seen[key] = true
		if got := LevelFromBits(u, lo); got != l {
			t.Fatalf("LevelFromBits(Bits(%v)) = %v", l, got)
		}
	}
}

func TestGrayAdjacency(t *testing.T) {
	// Adjacent levels must differ in exactly one bit — the property that
	// makes a one-level misread cost one bit error.
	for l := L0; l < L3; l++ {
		if d := BitErrors(l, l+1); d != 1 {
			t.Fatalf("levels %v and %v differ in %d bits, want 1", l, l+1, d)
		}
	}
}

func TestBitErrorsProperties(t *testing.T) {
	for a := L0; a < numLevels; a++ {
		if BitErrors(a, a) != 0 {
			t.Fatalf("BitErrors(%v,%v) != 0", a, a)
		}
		for b := L0; b < numLevels; b++ {
			if BitErrors(a, b) != BitErrors(b, a) {
				t.Fatalf("BitErrors not symmetric for %v,%v", a, b)
			}
			if d := BitErrors(a, b); d < 0 || d > 2 {
				t.Fatalf("BitErrors(%v,%v) = %d out of range", a, b, d)
			}
		}
	}
}

func TestTargetLevelsRoundTrip(t *testing.T) {
	r := stats.NewRNG(200)
	for trial := 0; trial < 100; trial++ {
		data := make([]byte, 1+r.Intn(64))
		for i := range data {
			data[i] = byte(r.Intn(256))
		}
		levels := TargetLevels(data)
		if len(levels) != len(data)*4 {
			t.Fatalf("%d levels for %d bytes", len(levels), len(data))
		}
		back := LevelsToBytes(levels)
		if !bytes.Equal(back, data) {
			t.Fatalf("round trip failed: %x -> %x", data, back)
		}
	}
}

func TestTargetLevelsQuickRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		return bytes.Equal(LevelsToBytes(TargetLevels(data)), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyVTH(t *testing.T) {
	cal := DefaultCalibration()
	cases := []struct {
		vth  float64
		want Level
	}{
		{-3.0, L0},
		{cal.Read[0] - 0.01, L0},
		{cal.Read[0] + 0.01, L1},
		{cal.Read[1] - 0.01, L1},
		{cal.Read[1] + 0.01, L2},
		{cal.Read[2] - 0.01, L2},
		{cal.Read[2] + 0.01, L3},
		{5.0, L3},
	}
	for _, c := range cases {
		if got := cal.ClassifyVTH(c.vth); got != c.want {
			t.Errorf("ClassifyVTH(%v) = %v, want %v", c.vth, got, c.want)
		}
	}
}

func TestVerifyTarget(t *testing.T) {
	cal := DefaultCalibration()
	for i, l := range []Level{L1, L2, L3} {
		if got := cal.VerifyTarget(l); got != cal.VFY[i] {
			t.Fatalf("VerifyTarget(%v) = %v", l, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("VerifyTarget(L0) did not panic")
		}
	}()
	cal.VerifyTarget(L0)
}

func TestLevelGeometrySane(t *testing.T) {
	// R1 < VFY1 < R2 < VFY2 < R3 < VFY3 < OP: each read level must sit
	// below the verify level of the distribution above it.
	cal := DefaultCalibration()
	seq := []float64{cal.Read[0], cal.VFY[0], cal.Read[1], cal.VFY[1], cal.Read[2], cal.VFY[2], cal.OverProg}
	for i := 1; i < len(seq); i++ {
		if seq[i] <= seq[i-1] {
			t.Fatalf("level geometry not monotone at index %d: %v", i, seq)
		}
	}
	if cal.EraseMu >= cal.Read[0] {
		t.Fatal("erased distribution mean above R1")
	}
}

func TestAlgorithmString(t *testing.T) {
	if ISPPSV.String() != "ISPP-SV" || ISPPDV.String() != "ISPP-DV" {
		t.Fatal("algorithm names drifted")
	}
	if Algorithm(9).String() != "ISPP-?" {
		t.Fatal("unknown algorithm should render as ISPP-?")
	}
}
