package nand

import (
	"testing"
	"testing/quick"
)

func TestStressedRBERReducesToBase(t *testing.T) {
	cal := DefaultCalibration()
	s := DefaultStressConfig()
	for _, alg := range []Algorithm{ISPPSV, ISPPDV} {
		for _, n := range []float64{0, 1e3, 1e6} {
			base := cal.RBER(alg, n)
			got := cal.StressedRBER(s, alg, n, 0, 0)
			if got != base {
				t.Fatalf("%v N=%g: unstressed RBER %g != base %g", alg, n, got, base)
			}
		}
	}
}

func TestStressedRBERMonotoneInReads(t *testing.T) {
	cal := DefaultCalibration()
	s := DefaultStressConfig()
	prev := 0.0
	for _, reads := range []float64{0, 1e3, 1e4, 1e5, 1e6} {
		cur := cal.StressedRBER(s, ISPPSV, 1e4, reads, 0)
		if cur < prev {
			t.Fatalf("RBER decreased with read count at %g", reads)
		}
		prev = cur
	}
	// A heavily disturbed block must be clearly worse than undisturbed.
	if prev < 1.2*cal.StressedRBER(s, ISPPSV, 1e4, 0, 0) {
		t.Fatal("read disturb effect too weak to matter")
	}
}

func TestStressedRBERMonotoneInRetention(t *testing.T) {
	cal := DefaultCalibration()
	s := DefaultStressConfig()
	prev := 0.0
	for _, hours := range []float64{0, 10, 100, 1e3, 1e4} {
		cur := cal.StressedRBER(s, ISPPSV, 1e4, 0, hours)
		if cur < prev {
			t.Fatalf("RBER decreased with retention at %g h", hours)
		}
		prev = cur
	}
}

func TestRetentionWorseOnWornDevice(t *testing.T) {
	// Aged oxide leaks faster: the same bake must cost more RBER
	// (relatively) at high cycle counts.
	cal := DefaultCalibration()
	s := DefaultStressConfig()
	relFresh := cal.StressedRBER(s, ISPPSV, 100, 0, 1e4) / cal.RBER(ISPPSV, 100)
	relWorn := cal.StressedRBER(s, ISPPSV, 1e5, 0, 1e4) / cal.RBER(ISPPSV, 1e5)
	if relWorn <= relFresh {
		t.Fatalf("retention relative penalty fresh %v >= worn %v", relFresh, relWorn)
	}
}

func TestStressedRBERCeiling(t *testing.T) {
	cal := DefaultCalibration()
	s := DefaultStressConfig()
	if got := cal.StressedRBER(s, ISPPSV, 1e6, 1e12, 1e9); got > cal.RBERCeiling {
		t.Fatalf("stressed RBER %g above ceiling", got)
	}
}

func TestStressedRBERNegativeInputsClamped(t *testing.T) {
	cal := DefaultCalibration()
	s := DefaultStressConfig()
	base := cal.RBER(ISPPSV, 1e3)
	if got := cal.StressedRBER(s, ISPPSV, 1e3, -5, -7); got != base {
		t.Fatalf("negative stress inputs not clamped: %g vs %g", got, base)
	}
}

func TestStressedRBERQuickSanity(t *testing.T) {
	cal := DefaultCalibration()
	s := DefaultStressConfig()
	f := func(readsRaw, hoursRaw uint32) bool {
		reads := float64(readsRaw)
		hours := float64(hoursRaw % 100000)
		got := cal.StressedRBER(s, ISPPDV, 1e4, reads, hours)
		return got >= cal.RBER(ISPPDV, 1e4) && got <= cal.RBERCeiling
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceReadDisturbAccumulatesAndErasesHeal(t *testing.T) {
	cal := DefaultCalibration()
	d := NewDevice(cal, 1, 3)
	if _, err := d.Program(0, 0, make([]byte, 64), nil, ISPPSV); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := d.Read(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	reads, err := d.BlockReads(0)
	if err != nil || reads != 10 {
		t.Fatalf("block reads = %v, %v", reads, err)
	}
	if err := d.Erase(0); err != nil {
		t.Fatal(err)
	}
	if reads, _ := d.BlockReads(0); reads != 0 {
		t.Fatalf("erase did not heal read disturb: %v", reads)
	}
	if _, err := d.BlockReads(5); err == nil {
		t.Fatal("out-of-range block accepted")
	}
}

func TestDeviceRetentionClock(t *testing.T) {
	cal := DefaultCalibration()
	d := NewDevice(cal, 2, 4)
	d.AdvanceTime(-5) // ignored
	if d.ClockHours() != 0 {
		t.Fatal("negative time advanced the clock")
	}
	if err := d.SetCycles(0, 1e5); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4096)
	if _, err := d.Program(0, 0, data, nil, ISPPSV); err != nil {
		t.Fatal(err)
	}
	freshFlips := 0
	for i := 0; i < 10; i++ {
		rd, _, err := d.Read(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		freshFlips += bitDiff(rd, data)
	}
	d.AdvanceTime(5e4) // ~6 year bake
	bakedFlips := 0
	for i := 0; i < 10; i++ {
		rd, _, err := d.Read(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		bakedFlips += bitDiff(rd, data)
	}
	if bakedFlips <= freshFlips {
		t.Fatalf("retention bake did not increase errors: %d vs %d", bakedFlips, freshFlips)
	}
	// A page written after the bake carries no retention age.
	if _, err := d.Program(0, 1, data, nil, ISPPSV); err != nil {
		t.Fatal(err)
	}
	newFlips := 0
	for i := 0; i < 10; i++ {
		rd, _, err := d.Read(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		newFlips += bitDiff(rd, data)
	}
	if newFlips >= bakedFlips {
		t.Fatalf("fresh page (%d flips) as bad as baked page (%d)", newFlips, bakedFlips)
	}
}
