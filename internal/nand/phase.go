package nand

import "time"

// PhaseKind labels one interval of the program-operation waveform, the
// granularity at which the high-voltage subsystem model (internal/hv)
// integrates charge-pump power.
type PhaseKind int

const (
	// PhaseLoad is the page-buffer data load preceding the pulse train.
	PhaseLoad PhaseKind = iota
	// PhaseProgram is one ISPP gate pulse driven by the program pump.
	PhaseProgram
	// PhaseVerify is one verify read driven by the verify pump.
	PhaseVerify
	// PhaseErase is a block-erase interval.
	PhaseErase
)

// String implements fmt.Stringer.
func (k PhaseKind) String() string {
	switch k {
	case PhaseLoad:
		return "load"
	case PhaseProgram:
		return "program"
	case PhaseVerify:
		return "verify"
	case PhaseErase:
		return "erase"
	default:
		return "phase?"
	}
}

// Phase is one step of the operation timeline handed to the HV model.
type Phase struct {
	Kind     PhaseKind
	Duration time.Duration
	// VCG is the control-gate voltage for program phases (pump target).
	VCG float64
	// ActiveFrac is the fraction of page cells still being programmed
	// (inhibited cells load the inhibit pump instead).
	ActiveFrac float64
	// Level is the target level for verify phases.
	Level Level
}

// TimelineDuration sums the durations of a phase sequence.
func TimelineDuration(tl []Phase) time.Duration {
	var d time.Duration
	for _, p := range tl {
		d += p.Duration
	}
	return d
}
