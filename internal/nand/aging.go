package nand

import "math"

// AgedParams holds the device variability parameters scaled to a given
// number of program/erase cycles. Repeated cycling degrades the tunnel
// oxide (trap generation), which the compact model expresses as growth of
// the per-pulse injection noise, broadening of the erased distribution,
// a retention-like downward shift of programmed levels and a one-sided
// "slow cell" tail on the gate-coupling offset (paper §5.1, "aging
// effects due to repeated Program/Erase cycling which typically degrades
// the RBER").
type AgedParams struct {
	Cycles float64 // program/erase cycles N

	Wear       float64 // dimensionless wear index
	KSigma     float64 // cell-to-cell coupling-offset spread [V]
	KSlowTail  float64 // one-sided slow-cell tail sigma [V]
	InjSigma   float64 // per-pulse injection-granularity noise [V]
	EraseSigma float64 // erased-distribution spread [V]
	RetShift   float64 // downward shift of programmed levels at read [V]
	ReadNoise  float64 // sensing noise [V]
}

// Age scales the calibration's fresh variability parameters to N cycles.
// Wear grows as a sub-linear power law (trap generation saturates);
// the retention shift grows per decade of cycling.
func (c Calibration) Age(cycles float64) AgedParams {
	if cycles < 0 {
		cycles = 0
	}
	wear := c.AgingSigmaCoef * math.Pow(cycles, c.AgingSigmaExp)
	decades := math.Log10(1 + cycles)
	return AgedParams{
		Cycles:     cycles,
		Wear:       wear,
		KSigma:     c.KOffsetSigma,
		KSlowTail:  c.AgingSlowTail * decades,
		InjSigma:   c.InjectionSigma * (1 + wear),
		EraseSigma: c.EraseSigma * (1 + 0.3*wear),
		RetShift:   c.AgingShift * decades,
		ReadNoise:  c.ReadNoiseSigma,
	}
}
