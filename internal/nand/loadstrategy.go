package nand

// LoadStrategy selects how page data reaches the page buffer and how the
// two bits per cell are placed (paper footnote 1 and §6.3.3).
type LoadStrategy int

const (
	// FullSequence loads both logical pages up front and programs all
	// target levels in one ISPP run — the strategy the paper simulates.
	FullSequence LoadStrategy = iota
	// TwoRound programs the lower page first (a coarse two-level
	// placement) and the upper page in a second round that refines cells
	// onto the final four levels. Only the second round needs the
	// accurate placement, so the double-verify overhead applies to that
	// round alone — the mitigation §6.3.3 points to for the write-
	// throughput penalty.
	TwoRound
)

// String implements fmt.Stringer.
func (s LoadStrategy) String() string {
	switch s {
	case FullSequence:
		return "full-sequence"
	case TwoRound:
		return "two-round"
	default:
		return "load?"
	}
}

// EstimateProgramStrategy extends EstimateProgram with the data-load
// strategy. FullSequence delegates to the standard estimator. TwoRound
// splits the operation:
//
//   - round 1 (lower page): a two-level placement to an intermediate
//     verify target, always standard ISPP-SV (accuracy is refined later
//     anyway), covering roughly the lower half of the V_TH span;
//   - round 2 (upper page): the four-level refinement with the selected
//     algorithm; only here does ISPP-DV spend its extra verifies.
//
// The second round's data load overlaps round 1's programming, hiding
// TLoad once.
func EstimateProgramStrategy(cal Calibration, alg Algorithm, strat LoadStrategy, aged AgedParams) ProgramResult {
	if strat == FullSequence {
		return EstimateProgram(cal, alg, aged)
	}
	// Round 1: SV placement over about half the span (to the L1/L2
	// boundary region). Model it as an SV program whose slowest target
	// is VFY1 + half the remaining span.
	r1cal := cal
	r1cal.VFY[2] = cal.VFY[0] + 0.5*(cal.VFY[2]-cal.VFY[0])
	round1 := EstimateProgram(r1cal, ISPPSV, aged)

	// Round 2: refinement from the intermediate placement to the final
	// levels with the selected algorithm. The ramp is shorter (cells
	// start near their targets): model with a start voltage raised by
	// the round-1 span.
	r2cal := cal
	r2cal.VStart = cal.VStart + 0.4*(cal.VFY[2]-cal.VFY[0])
	round2 := EstimateProgram(r2cal, alg, aged)

	total := ProgramResult{
		Algorithm:   alg,
		Pulses:      round1.Pulses + round2.Pulses,
		Verifies:    round1.Verifies + round2.Verifies,
		PreVerifies: round2.PreVerifies,
		MaxVCG:      round2.MaxVCG,
		// The second data load hides behind round 1's pulses.
		Duration: round1.Duration + round2.Duration - cal.TLoad,
	}
	return total
}

// WriteLossStrategy returns the fractional write-throughput loss of
// switching SV -> alg under the given load strategy at the given wear —
// the quantity Fig. 9 plots for FullSequence, and its mitigated variant
// for TwoRound.
func WriteLossStrategy(cal Calibration, alg Algorithm, strat LoadStrategy, cycles float64) float64 {
	aged := cal.Age(cycles)
	base := EstimateProgramStrategy(cal, ISPPSV, strat, aged)
	mod := EstimateProgramStrategy(cal, alg, strat, aged)
	return 1 - base.Duration.Seconds()/mod.Duration.Seconds()
}
