//go:build !race

package nand

const raceEnabled = false
