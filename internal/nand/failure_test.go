package nand

import (
	"testing"

	"xlnand/internal/stats"
)

// TestProgramFailureWhenPumpCeilingTooLow injects a miscalibration: a
// pump ceiling too low for the L3 verify level must surface as counted
// program failures (the status-fail path), never as silent success.
func TestProgramFailureWhenPumpCeilingTooLow(t *testing.T) {
	cal := DefaultCalibration()
	cal.VEnd = cal.VFY[2] + cal.KOffsetMu - 1.0 // L3 unreachable for most cells
	sim := NewPageSim(cal, 512, stats.NewRNG(70))
	aged := cal.Age(0)
	sim.Erase(aged)
	res, err := sim.Program(uniformTargets(512, L3), ISPPSV, aged)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("unreachable verify level reported zero failures")
	}
	// The failing cells must still be below the verify level.
	below := 0
	for _, v := range sim.VTHs() {
		if v < cal.VFY[2] {
			below++
		}
	}
	if below < res.Failures {
		t.Fatalf("%d failures reported but only %d cells below VFY3", res.Failures, below)
	}
}

// TestProgramFailureSlowCellTail: an extreme slow-cell tail (gross
// end-of-life) exhausts the pulse budget for some cells.
func TestProgramFailureSlowCellTail(t *testing.T) {
	cal := DefaultCalibration()
	cal.AgingSlowTail = 1.2 // pathological tail growth
	sim := NewPageSim(cal, 2048, stats.NewRNG(71))
	aged := cal.Age(1e6)
	sim.Erase(aged)
	res, err := sim.Program(uniformTargets(2048, L3), ISPPSV, aged)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("pathological slow-cell tail produced no failures")
	}
}

// TestOverProgrammingStaysBounded: no cell may exceed the over-program
// level OP on a healthy device — over-programmed cells would read as a
// higher level permanently (paper Fig. 3's OP marker).
func TestOverProgrammingStaysBounded(t *testing.T) {
	cal := DefaultCalibration()
	for _, alg := range []Algorithm{ISPPSV, ISPPDV} {
		sim := NewPageSim(cal, 4096, stats.NewRNG(72))
		aged := cal.Age(0)
		sim.Erase(aged)
		r := stats.NewRNG(720)
		if _, err := sim.Program(mixedTargets(r, 4096), alg, aged); err != nil {
			t.Fatal(err)
		}
		for i, v := range sim.VTHs() {
			if v > cal.OverProg {
				t.Fatalf("%v: cell %d over-programmed to %.2f V (OP %.2f)", alg, i, v, cal.OverProg)
			}
		}
	}
}

// TestCCICouplingShiftsVictims: programming neighbours must push a
// victim cell's threshold upward, and disabling the coupling must remove
// the effect.
func TestCCICouplingShiftsVictims(t *testing.T) {
	run := func(coupling float64) float64 {
		cal := DefaultCalibration()
		cal.CCICoupling = coupling
		sim := NewPageSim(cal, 3*256, stats.NewRNG(73))
		aged := cal.Age(0)
		sim.Erase(aged)
		// Pattern: victim cells target L1, neighbours target L3.
		targets := make([]Level, 3*256)
		for i := range targets {
			if i%3 == 1 {
				targets[i] = L1
			} else {
				targets[i] = L3
			}
		}
		if _, err := sim.Program(targets, ISPPSV, aged); err != nil {
			t.Fatal(err)
		}
		var sum float64
		var n int
		for i, v := range sim.VTHs() {
			if i%3 == 1 {
				sum += v
				n++
			}
		}
		return sum / float64(n)
	}
	with := run(0.12)
	without := run(0)
	if with <= without {
		t.Fatalf("CCI did not raise victim VTH: %.4f vs %.4f", with, without)
	}
}

// TestReadNoiseCausesBoundaryMisreads: with exaggerated sensing noise,
// misreads appear even on a fresh device, and they disappear when the
// noise is removed.
func TestReadNoiseCausesBoundaryMisreads(t *testing.T) {
	run := func(noise float64) int {
		cal := DefaultCalibration()
		cal.ReadNoiseSigma = noise
		sim := NewPageSim(cal, 4096, stats.NewRNG(74))
		aged := cal.Age(0)
		sim.Erase(aged)
		r := stats.NewRNG(740)
		targets := mixedTargets(r, 4096)
		if _, err := sim.Program(targets, ISPPSV, aged); err != nil {
			t.Fatal(err)
		}
		got := sim.ReadLevels(aged, ReadOffsets{})
		errs := 0
		for i := range targets {
			errs += BitErrors(targets[i], got[i])
		}
		return errs
	}
	noisy := run(0.30)
	clean := run(0.0)
	if noisy <= clean {
		t.Fatalf("sensing noise had no effect: %d vs %d", noisy, clean)
	}
	if noisy < 10 {
		t.Fatalf("0.3 V sensing noise produced only %d errors", noisy)
	}
}
