package nand

import (
	"fmt"
	"math"
	"time"
)

// This file models soft-sense reads: the multi-sense confidence
// mechanism behind soft-decision ECC (Cai et al., "Errors in Flash-
// Memory-Based Solid-State Drives", arXiv:1711.11427 §6; Luo's
// architectural-techniques survey, arXiv:1808.04016). When hard
// re-reads at shifted references stop helping, the controller senses
// the page several more times at references bracketing each read
// boundary. A cell whose component senses disagree sits *between* the
// bracketing references — close to a boundary, hence unreliable —
// while a cell that reads identically everywhere is firmly inside a
// V_TH distribution. The per-cell agreement pattern quantises into a
// log-likelihood ratio a soft-input decoder (LDPC min-sum) consumes,
// recovering roughly another order of magnitude of raw bit errors
// beyond the hard-decision ladder.
//
// The analytic model mirrors the staged-retry layer above: the hard
// decisions come from one center sense at the requested ladder step
// (exactly ReadInto's error process), and the bracketing senses are
// modelled by their information content — a misread cell is flagged
// low-confidence with probability SoftCapture (drifted cells sit near
// the boundary that misclassified them), a correctly-read cell with
// probability SoftFalseWeak. Every component sense pays one tR and one
// read-disturb count; the time and stress cost of soft information is
// real even though the component senses themselves are folded into the
// confidence statistics.

// Soft-read LLR quantisation: the device reports per-bit confidence as
// a signed magnitude (positive = bit 0, the erased-side convention).
const (
	// SoftStrongLLR is the magnitude of a bit all component senses
	// agree on.
	SoftStrongLLR = 7
	// SoftWeakLLR is the magnitude of a bit whose component senses
	// disagree (the cell sits between bracketing references).
	SoftWeakLLR = 1
)

// ReadSoft is the multi-sense soft read at the device's default width:
// it senses the page StressConfig.SoftSenses times around retry ladder
// step. See ReadSoftN for the full contract.
func (d *Device) ReadSoft(blockIdx, pageIdx, step int, buf []byte, llr []int8) (nData, nSpare, senses int, err error) {
	return d.ReadSoftN(blockIdx, pageIdx, step, d.stress.SoftSenses, buf, llr)
}

// ReadSoftN is the multi-sense soft read at an explicit width: it
// senses the page `senses` times around retry ladder step (clamped to
// StressConfig.SoftSensesMax when that cap is set), writes the center
// sense's hard decisions into buf (data followed by spare — the same
// codeword layout as ReadInto) and one signed confidence value per
// codeword bit into llr (positive = bit 0; magnitude SoftStrongLLR or
// SoftWeakLLR). buf must hold the codeword and llr one int8 per
// codeword bit. Every component sense counts against the block's
// read-disturb stress and pays one tR; the returned senses count lets
// the controller charge the full sensing time on its timeline.
//
// Widening the read adds bracket pairs around the center reference
// ((senses-1)/2 pairs): each extra pair samples one reference step
// further out, so the center rides the best of a wider ladder window
// and an error cell missed by the inner brackets gets another chance
// to be flagged low-confidence — capture and false-weak probabilities
// compound per pair. This is the escalation path a controller walks
// (3→5→7) as min-sum keeps failing.
func (d *Device) ReadSoftN(blockIdx, pageIdx, step, senses int, buf []byte, llr []int8) (nData, nSpare int, sensesOut int, err error) {
	p, b, err := d.pageAt(blockIdx, pageIdx)
	if err != nil {
		return 0, 0, 0, err
	}
	if !p.written {
		return 0, 0, 0, fmt.Errorf("nand: soft read of unwritten page %d.%d", blockIdx, pageIdx)
	}
	if step < 0 {
		return 0, 0, 0, fmt.Errorf("nand: negative read-retry step %d", step)
	}
	nData, nSpare = len(p.data), len(p.spare)
	if len(buf) < nData+nSpare {
		return 0, 0, 0, fmt.Errorf("nand: soft-read buffer %d bytes, page %d.%d needs %d",
			len(buf), blockIdx, pageIdx, nData+nSpare)
	}
	nbits := (nData + nSpare) * 8
	if len(llr) < nbits {
		return 0, 0, 0, fmt.Errorf("nand: soft-read LLR buffer %d entries, page %d.%d needs %d",
			len(llr), blockIdx, pageIdx, nbits)
	}
	if senses < 1 {
		senses = 1
	}
	if max := d.stress.SoftSensesMax; max > 0 && senses > max {
		senses = max
	}
	pairs := (senses - 1) / 2
	b.reads += float64(senses)
	// The component senses bracket the center reference (steps step-p..
	// step+p on the calibrated ladder), and the per-cell majority across
	// them supplies the hard decisions — so the effective error rate is
	// the best of the bracketed steps, which is what makes the soft read
	// robust to an imperfectly calibrated center (and wider reads robust
	// to a center that is further off).
	retention := d.clockHours - p.writtenAtHours
	rber := d.cal.RecoveredRBER(d.stress, p.alg, b.cycles, b.reads, retention, step)
	for s := step - pairs; s <= step+pairs; s++ {
		if s == step || s < 0 || s > d.stress.RetrySteps {
			continue
		}
		if r := d.cal.RecoveredRBER(d.stress, p.alg, b.cycles, b.reads, retention, s); r < rber {
			rber = r
		}
	}
	// Each bracket pair gets an independent shot at flagging a cell
	// low-confidence, so the probabilities compound per pair. The
	// single-pair case keeps the raw constants bit-for-bit (no Pow
	// round-trip), preserving legacy RNG-stream-sensitive fixtures.
	capture, falseWeak := d.stress.SoftCapture, d.stress.SoftFalseWeak
	if pairs > 1 {
		capture = 1 - math.Pow(1-capture, float64(pairs))
		falseWeak = 1 - math.Pow(1-falseWeak, float64(pairs))
	}

	// Center sense: the hard decisions, with the error positions kept so
	// the bracketing senses' information content can be attached.
	copy(buf[:nData], p.data)
	copy(buf[nData:nData+nSpare], p.spare)
	nerr := d.rng.Binomial(nbits, rber)
	d.errPos = d.rng.SampleKAppend(d.errPos[:0], nbits, nerr)
	errPos := d.errPos
	for _, pos := range errPos {
		buf[pos/8] ^= 1 << uint(7-pos%8)
	}

	// Confidence: strong by default, signed by the center sense's hard
	// decision (bit 0 reads positive).
	for i := 0; i < nbits; i++ {
		if buf[i/8]&(1<<uint(7-i%8)) == 0 {
			llr[i] = SoftStrongLLR
		} else {
			llr[i] = -SoftStrongLLR
		}
	}
	weaken := func(pos int) {
		if llr[pos] > 0 {
			llr[pos] = SoftWeakLLR
		} else {
			llr[pos] = -SoftWeakLLR
		}
	}
	// Misread cells sit near the boundary that misclassified them: the
	// bracketing senses catch most of them.
	for _, pos := range errPos {
		if d.rng.Bernoulli(capture) {
			weaken(pos)
		}
	}
	// And some correctly-read cells legitimately live near a boundary.
	// errPos is dead past this point, so its scratch is recycled.
	nFalse := d.rng.Binomial(nbits, falseWeak)
	d.errPos = d.rng.SampleKAppend(d.errPos[:0], nbits, nFalse)
	for _, pos := range d.errPos {
		weaken(pos)
	}

	d.lastOpDuration = time.Duration(senses) * PageReadTime
	return nData, nSpare, senses, nil
}
