//go:build race

package nand

// raceEnabled gates AllocsPerRun tests: race-detector instrumentation
// allocates, so zero-alloc contracts are only checkable without it.
const raceEnabled = true
