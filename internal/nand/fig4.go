package nand

import (
	"math"

	"xlnand/internal/stats"
)

// TransferCurve is the ISPP characterisation of Fig. 4: the threshold
// voltage of a cell tracked pulse by pulse against the staircase control
// gate voltage (the paper's fit uses 7 µs pulses with ΔISPP = 1 V on a
// 41 nm device).
type TransferCurve struct {
	VCG []float64
	VTH []float64
}

// SimulateTransferCurve runs the compact model for a single median cell
// through an ISPP ramp from vStart to vEnd with the given step, starting
// at threshold vth0, without verify (pure characterisation mode). The
// staircase saturates to VTH = VCG - K with unit slope once the overdrive
// exceeds the starting threshold — the signature Fig. 4 checks.
func (c Calibration) SimulateTransferCurve(vStart, vEnd, step, vth0 float64) TransferCurve {
	var tc TransferCurve
	vth := vth0
	k := c.KOffsetMu
	for vcg := vStart; vcg <= vEnd+1e-9; vcg += step {
		land := vcg - k
		if land > vth {
			vth = land
		}
		tc.VCG = append(tc.VCG, vcg)
		tc.VTH = append(tc.VTH, vth)
	}
	return tc
}

// ReferenceTransferCurve synthesises the "experimental" staircase the
// compact model is fitted against (substituting for the measured 41 nm
// data of Spessot et al. [26], see DESIGN.md §3): the same physics with
// a soft turn-on knee and measurement noise.
func (c Calibration) ReferenceTransferCurve(vStart, vEnd, step, vth0 float64, rng *stats.RNG) TransferCurve {
	var tc TransferCurve
	vth := vth0
	k := c.KOffsetMu
	const knee = 0.8 // soft transition region width [V]
	for vcg := vStart; vcg <= vEnd+1e-9; vcg += step {
		over := vcg - k - vth
		switch {
		case over > knee:
			vth = vcg - k
		case over > 0:
			// Sub-exponential approach inside the knee.
			vth += over * (1 - math.Exp(-over/knee))
		}
		noisy := vth + rng.NormMuSigma(0, 0.05)
		tc.VCG = append(tc.VCG, vcg)
		tc.VTH = append(tc.VTH, noisy)
	}
	return tc
}

// RMSDiff returns the root-mean-square V_TH difference between two curves
// sampled on the same VCG grid — the fit-quality metric for Fig. 4.
func RMSDiff(a, b TransferCurve) float64 {
	n := len(a.VTH)
	if len(b.VTH) < n {
		n = len(b.VTH)
	}
	if n == 0 {
		return math.NaN()
	}
	var s float64
	for i := 0; i < n; i++ {
		d := a.VTH[i] - b.VTH[i]
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}
