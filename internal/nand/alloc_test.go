package nand

import (
	"testing"

	"xlnand/internal/stats"
)

// TestReadLevelsIntoZeroAlloc pins the buffer-reuse contract of the
// batched sensing path: once the caller supplies the level buffer,
// repeated reads allocate nothing.
func TestReadLevelsIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	sim, aged := freshPage(t, 11)
	r := stats.NewRNG(12)
	if _, err := sim.Program(mixedTargets(r, testCells), ISPPSV, aged); err != nil {
		t.Fatal(err)
	}
	dst := make([]Level, sim.Cells())
	avg := testing.AllocsPerRun(20, func() {
		sim.ReadLevelsInto(dst, aged, ReadOffsets{})
	})
	if avg != 0 {
		t.Fatalf("ReadLevelsInto allocates %.1f/op, want 0", avg)
	}
}

// TestReadBytesIntoZeroAlloc: same contract for the byte-packing read —
// the level scratch is page-owned and warm after the first call.
func TestReadBytesIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	sim, aged := freshPage(t, 13)
	r := stats.NewRNG(14)
	if _, err := sim.Program(mixedTargets(r, testCells), ISPPSV, aged); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, (sim.Cells()+3)/4)
	sim.ReadBytesInto(dst, aged, ReadOffsets{}) // warm the scratch
	avg := testing.AllocsPerRun(20, func() {
		sim.ReadBytesInto(dst, aged, ReadOffsets{})
	})
	if avg != 0 {
		t.Fatalf("ReadBytesInto allocates %.1f/op, want 0", avg)
	}
}

// TestReadLevelsIntoMatchesReadLevels pins the batched path to the
// allocating wrapper bit-for-bit: same RNG stream, same classifications
// — the property that keeps golden trajectories byte-identical.
func TestReadLevelsIntoMatchesReadLevels(t *testing.T) {
	cal := DefaultCalibration()
	simA := NewPageSim(cal, testCells, stats.NewRNG(21))
	simB := NewPageSim(cal, testCells, stats.NewRNG(21))
	aged := cal.Age(3000)
	simA.Erase(aged)
	simB.Erase(aged)
	r := stats.NewRNG(22)
	targets := mixedTargets(r, testCells)
	if _, err := simA.Program(targets, ISPPDV, aged); err != nil {
		t.Fatal(err)
	}
	if _, err := simB.Program(targets, ISPPDV, aged); err != nil {
		t.Fatal(err)
	}
	off := ReadOffsets{-0.05, 0, 0.05}
	dst := make([]Level, testCells)
	for trial := 0; trial < 4; trial++ {
		want := simA.ReadLevels(aged, off)
		got := simB.ReadLevelsInto(dst, aged, off)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d cell %d: ReadLevelsInto %v, ReadLevels %v", trial, i, got[i], want[i])
			}
		}
	}
}
