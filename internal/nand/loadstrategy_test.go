package nand

import "testing"

func TestLoadStrategyString(t *testing.T) {
	if FullSequence.String() != "full-sequence" || TwoRound.String() != "two-round" ||
		LoadStrategy(9).String() != "load?" {
		t.Fatal("strategy names drifted")
	}
}

func TestFullSequenceDelegates(t *testing.T) {
	cal := DefaultCalibration()
	aged := cal.Age(1e4)
	a := EstimateProgram(cal, ISPPDV, aged)
	b := EstimateProgramStrategy(cal, ISPPDV, FullSequence, aged)
	if a.Duration != b.Duration || a.Pulses != b.Pulses {
		t.Fatal("FullSequence strategy does not match the base estimator")
	}
}

func TestTwoRoundSlowerInAbsoluteTerms(t *testing.T) {
	// Two-round is not free: the split placement costs extra pulses and
	// verifies overall (that is why full-sequence exists).
	cal := DefaultCalibration()
	aged := cal.Age(1e3)
	for _, alg := range []Algorithm{ISPPSV, ISPPDV} {
		full := EstimateProgramStrategy(cal, alg, FullSequence, aged)
		two := EstimateProgramStrategy(cal, alg, TwoRound, aged)
		if two.Duration <= full.Duration {
			t.Fatalf("%v: two-round %v not slower than full-sequence %v",
				alg, two.Duration, full.Duration)
		}
	}
}

func TestTwoRoundMitigatesDVPenalty(t *testing.T) {
	// The paper's §6.3.3 claim: the DV write-throughput loss "can be
	// mitigated by using a two-round data load strategy". The relative
	// loss must shrink substantially at every wear level.
	cal := DefaultCalibration()
	for _, n := range []float64{1, 1e3, 1e6} {
		full := WriteLossStrategy(cal, ISPPDV, FullSequence, n)
		two := WriteLossStrategy(cal, ISPPDV, TwoRound, n)
		if two >= full {
			t.Fatalf("N=%g: two-round loss %.1f%% not below full-sequence %.1f%%",
				n, 100*two, 100*full)
		}
		if full-two < 0.08 {
			t.Fatalf("N=%g: mitigation only %.1f points", n, 100*(full-two))
		}
		if two < 0.10 {
			t.Fatalf("N=%g: two-round loss %.1f%% implausibly small (DV still costs)",
				n, 100*two)
		}
	}
}

func TestTwoRoundPreVerifiesOnlyInSecondRound(t *testing.T) {
	cal := DefaultCalibration()
	aged := cal.Age(1e3)
	two := EstimateProgramStrategy(cal, ISPPDV, TwoRound, aged)
	fullDV := EstimateProgramStrategy(cal, ISPPDV, FullSequence, aged)
	if two.PreVerifies == 0 {
		t.Fatal("two-round DV lost its pre-verifies")
	}
	if two.PreVerifies >= fullDV.PreVerifies {
		t.Fatalf("two-round pre-verifies %d not below full-sequence %d",
			two.PreVerifies, fullDV.PreVerifies)
	}
}
