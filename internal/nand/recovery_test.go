package nand

import (
	"math"
	"testing"

	"xlnand/internal/stats"
)

// TestRecoveredRBERStepZeroMatchesStressed pins the ladder's anchor: a
// step-0 read is exactly the stressed RBER, at every corner.
func TestRecoveredRBERStepZeroMatchesStressed(t *testing.T) {
	cal := DefaultCalibration()
	s := DefaultStressConfig()
	for _, cyc := range []float64{0, 1e4, 1e6} {
		for _, h := range []float64{0, 500, 1e4} {
			got := cal.RecoveredRBER(s, ISPPSV, cyc, 100, h, 0)
			want := cal.StressedRBER(s, ISPPSV, cyc, 100, h)
			if got != want {
				t.Fatalf("step 0 at (%g cyc, %g h): %g != stressed %g", cyc, h, got, want)
			}
		}
	}
}

// TestRecoveredRBERFreshGainsNothing: a fresh page (no wear drift, no
// retention age) has an optimal step of 0, and shifting the references
// anyway only hurts.
func TestRecoveredRBERFreshGainsNothing(t *testing.T) {
	cal := DefaultCalibration()
	s := DefaultStressConfig()
	if k := cal.OptimalRetryStep(s, 0, 0); k != 0 {
		t.Fatalf("fresh-page optimal step = %d, want 0", k)
	}
	raw := cal.RecoveredRBER(s, ISPPSV, 0, 0, 0, 0)
	for step := 1; step <= s.RetrySteps; step++ {
		eff := cal.RecoveredRBER(s, ISPPSV, 0, 0, 0, step)
		if eff < raw {
			t.Fatalf("step %d improved a fresh page: %g < %g", step, eff, raw)
		}
	}
}

// TestRecoveredRBERBakedGainsOrderOfMagnitude anchors the recovery
// curve to Cai et al.: an end-of-life, long-baked page recovers close
// to an order of magnitude of RBER at its optimal ladder step, and the
// recovery is monotone up to that step.
func TestRecoveredRBERBakedGainsOrderOfMagnitude(t *testing.T) {
	cal := DefaultCalibration()
	s := DefaultStressConfig()
	const cycles, bake = 1e6, 1e4
	kOpt := cal.OptimalRetryStep(s, cycles, bake)
	if kOpt < 2 {
		t.Fatalf("EOL baked page has optimal step %d, expected a deep ladder", kOpt)
	}
	raw := cal.RecoveredRBER(s, ISPPSV, cycles, 0, bake, 0)
	prev := raw
	for step := 1; step <= kOpt; step++ {
		eff := cal.RecoveredRBER(s, ISPPSV, cycles, 0, bake, step)
		if eff > prev {
			t.Fatalf("recovery not monotone to the optimum: step %d %g > step %d %g",
				step, eff, step-1, prev)
		}
		prev = eff
	}
	gain := raw / prev
	if gain < 4 || gain > 20 {
		t.Fatalf("EOL baked recovery gain %.1fx at step %d, want roughly an order of magnitude", gain, kOpt)
	}
	// Past the optimum the over-shifted references hurt again.
	if kOpt < s.RetrySteps {
		over := cal.RecoveredRBER(s, ISPPSV, cycles, 0, bake, kOpt+1)
		if over <= prev {
			t.Fatalf("overshoot step %d (%g) not worse than optimum (%g)", kOpt+1, over, prev)
		}
	}
}

// TestOptimalStepGrowsWithClimate: deeper retention age and wear call
// for deeper ladder steps.
func TestOptimalStepGrowsWithClimate(t *testing.T) {
	cal := DefaultCalibration()
	s := DefaultStressConfig()
	young := cal.OptimalRetryStep(s, 1e3, 500)
	old := cal.OptimalRetryStep(s, 1e6, 500)
	baked := cal.OptimalRetryStep(s, 1e6, 1e4)
	if !(young <= old && old <= baked) {
		t.Fatalf("optimal step not monotone in climate: young %d, old %d, baked %d", young, old, baked)
	}
	if baked > s.RetrySteps {
		t.Fatalf("optimal step %d beyond ladder %d", baked, s.RetrySteps)
	}
}

// TestDeviceReadAtRecoversBakedPage drives the analytic device path:
// an aged, baked page read at its optimal step must carry measurably
// fewer raw bit errors than the nominal read.
func TestDeviceReadAtRecoversBakedPage(t *testing.T) {
	cal := DefaultCalibration()
	dev := NewDevice(cal, 1, 99)
	if err := dev.SetCycles(0, 1e6); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, cal.PageDataBytes)
	for i := range data {
		data[i] = byte(i * 13)
	}
	spare := make([]byte, 64)
	if _, err := dev.Program(0, 0, data, spare, ISPPSV); err != nil {
		t.Fatal(err)
	}
	dev.AdvanceTime(1e4)
	kOpt := cal.OptimalRetryStep(dev.Stress(), 1e6, 1e4)
	errsAt := func(step int) int {
		total := 0
		for rep := 0; rep < 8; rep++ {
			got, _, err := dev.ReadAt(0, 0, step)
			if err != nil {
				t.Fatal(err)
			}
			total += bitDiff(got, data)
		}
		return total
	}
	nominal := errsAt(0)
	recovered := errsAt(kOpt)
	if nominal == 0 {
		t.Fatal("baked EOL page read clean at step 0; stress model inert")
	}
	if recovered*3 >= nominal {
		t.Fatalf("step %d read has %d errors vs %d nominal; expected >3x recovery", kOpt, recovered, nominal)
	}
}

// TestPageSimShiftedReferencesRecoverRetentionDrift is the Monte-Carlo
// ground truth for the analytic model: classify a heavily drifted page
// at nominal references and at retention-matched shifted references,
// and require the shifted read to misclassify fewer cells.
func TestPageSimShiftedReferencesRecoverRetentionDrift(t *testing.T) {
	cal := DefaultCalibration()
	rng := stats.NewRNG(4242)
	sim := NewPageSim(cal, 4096, rng.Split())
	aged := cal.Age(1e6)
	// Exaggerate the retention drift so the drifted distributions
	// straddle the nominal references.
	aged.RetShift = 0.30

	data := make([]byte, sim.Cells()/4)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	targets := TargetLevels(data)
	sim.Erase(aged)
	if _, err := sim.Program(targets, ISPPSV, aged); err != nil {
		t.Fatal(err)
	}
	countErrs := func(off ReadOffsets) int {
		got := sim.ReadLevels(aged, off)
		n := 0
		for i, tgt := range targets {
			n += BitErrors(tgt, got[i])
		}
		return n
	}
	nominal := countErrs(ReadOffsets{})
	// L3 drifts by 2 x RetShift = 0.6 V, consuming the R3 margin — the
	// dominant error mechanism at this drift. Calibration moves R3 back
	// into the gap between the drifted L2 top and the drifted L3
	// bottom; the lower boundaries keep enough margin to stay put.
	shifted := countErrs(ReadOffsets{0, 0, -aged.RetShift})
	if nominal == 0 {
		t.Fatal("drifted page read clean at nominal references; drift model inert")
	}
	if shifted >= nominal {
		t.Fatalf("shifted read has %d errors vs %d nominal; reference calibration recovered nothing",
			shifted, nominal)
	}
	if math.Log2(float64(nominal+1)/float64(shifted+1)) < 2 {
		t.Fatalf("shifted read only %d vs %d errors; expected at least 4x recovery", shifted, nominal)
	}
}
