package nand

import (
	"math"
	"time"

	"xlnand/internal/stats"
)

// RBER returns the analytic lifetime raw bit error rate for the given
// program algorithm after `cycles` program/erase cycles — the calibrated
// reproduction of Fig. 5:
//
//   - flat at RBERFresh below RBERRefCyc cycles,
//   - power-law growth (exponent RBERExp) afterwards,
//   - ISPP-DV sits one order of magnitude (DVGain) below ISPP-SV across
//     the whole lifetime,
//   - clamped at a physical ceiling.
//
// The anchors: SV fresh = 1e-6 (the paper's best case, where t=3
// suffices), SV at 1e6 cycles = 1e-3 (where t=65 is needed), DV at 1e6
// cycles ≈ 8.4e-5 (t=14).
func (c Calibration) RBER(alg Algorithm, cycles float64) float64 {
	base := c.RBERFresh
	if cycles > c.RBERRefCyc {
		base *= math.Pow(cycles/c.RBERRefCyc, c.RBERExp)
	}
	if alg == ISPPDV {
		base /= c.DVGain
	}
	return math.Min(base, c.RBERCeiling)
}

// RBERMeasurement is the outcome of a Monte-Carlo RBER estimation run.
type RBERMeasurement struct {
	Pages     int
	Bits      int
	BitErrors int
	// RBER is BitErrors/Bits; zero errors yields the upper-bound
	// estimate 1/Bits flagged by UpperBound.
	RBER       float64
	UpperBound bool
	// AvgProgram is the mean page-program result across the run, used by
	// throughput and power analyses.
	AvgProgram ProgramResult
}

// MeasureRBER estimates the raw bit error rate by Monte-Carlo array
// simulation: erase, program a random data page with the chosen
// algorithm at age N, read back, count Gray-mapped bit errors. It runs
// until minErrors errors have been observed or maxPages pages simulated.
//
// At low true RBER the estimate is noise-limited (use the analytic model
// there); at the aged, high-RBER corners this measurement validates the
// model's shape.
func MeasureRBER(cal Calibration, alg Algorithm, cycles float64, cells, minErrors, maxPages int, rng *stats.RNG) RBERMeasurement {
	aged := cal.Age(cycles)
	var m RBERMeasurement
	var totalDur time.Duration
	var totalPulses, totalVerifies, totalPre int
	sim := NewPageSim(cal, cells, rng.Split())
	data := make([]byte, cells/4)
	lvls := make([]Level, cells)
	for m.Pages = 0; m.Pages < maxPages && m.BitErrors < minErrors; m.Pages++ {
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		targets := TargetLevels(data)
		sim.Erase(aged)
		res, err := sim.Program(targets, alg, aged)
		if err != nil {
			panic("nand: MeasureRBER internal misuse: " + err.Error())
		}
		got := sim.ReadLevelsInto(lvls, aged, ReadOffsets{})
		for i, tgt := range targets {
			m.BitErrors += BitErrors(tgt, got[i])
		}
		m.Bits += 2 * len(targets)
		totalDur += res.Duration
		totalPulses += res.Pulses
		totalVerifies += res.Verifies
		totalPre += res.PreVerifies
	}
	if m.Pages > 0 {
		m.AvgProgram = ProgramResult{
			Algorithm:   alg,
			Pulses:      totalPulses / m.Pages,
			Verifies:    totalVerifies / m.Pages,
			PreVerifies: totalPre / m.Pages,
			Duration:    totalDur / time.Duration(m.Pages),
		}
	}
	if m.BitErrors == 0 {
		m.RBER = 1 / float64(m.Bits)
		m.UpperBound = true
	} else {
		m.RBER = float64(m.BitErrors) / float64(m.Bits)
	}
	return m
}
