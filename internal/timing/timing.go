// Package timing holds the shared timing substrate of the memory
// sub-system: the flash interface bus model and the datasheet constants
// the paper quotes (Micron MT29F64G08 [27]). The controller and the
// throughput analyses consume these so that every figure uses one set of
// numbers.
package timing

import (
	"fmt"
	"time"
)

// FlashBus models the asynchronous 8-bit flash interface between the
// controller and the NAND die.
type FlashBus struct {
	WidthBits int     // data width (8 for the modelled part)
	ClockHz   float64 // cycle rate of the interface
}

// DefaultFlashBus returns the 8-bit, 33 MHz interface used throughout the
// reproduction (≈ 33 MB/s, the class of interface contemporary to the
// paper's referenced parts).
func DefaultFlashBus() FlashBus {
	return FlashBus{WidthBits: 8, ClockHz: 33e6}
}

// Transfer returns the time to move n bytes across the bus.
func (b FlashBus) Transfer(n int) time.Duration {
	if n < 0 {
		panic(fmt.Sprintf("timing: negative transfer size %d", n))
	}
	if b.WidthBits <= 0 || b.ClockHz <= 0 {
		panic("timing: uninitialised bus")
	}
	bytesPerCycle := float64(b.WidthBits) / 8
	cycles := float64(n) / bytesPerCycle
	return time.Duration(cycles / b.ClockHz * float64(time.Second))
}

// BandwidthMBps returns the raw bus bandwidth in MB/s.
func (b FlashBus) BandwidthMBps() float64 {
	return b.ClockHz * float64(b.WidthBits) / 8 / 1e6
}

// Throughput converts a payload size and total operation time into MB/s
// (decimal megabytes, the unit convention of the paper's figures).
func Throughput(payloadBytes int, total time.Duration) float64 {
	if total <= 0 {
		return 0
	}
	return float64(payloadBytes) / total.Seconds() / 1e6
}
