package timing

import (
	"math"
	"testing"
	"time"
)

func TestTransferLinear(t *testing.T) {
	b := DefaultFlashBus()
	t1 := b.Transfer(1000)
	t2 := b.Transfer(2000)
	if math.Abs(float64(t2)-2*float64(t1)) > float64(t1)/100 {
		t.Fatalf("transfer not linear: %v vs %v", t1, t2)
	}
	if b.Transfer(0) != 0 {
		t.Fatal("zero-byte transfer should take no time")
	}
}

func TestTransferPageScale(t *testing.T) {
	// 4 KB page + 130 B parity at 33 MB/s ≈ 128 µs.
	b := DefaultFlashBus()
	got := b.Transfer(4096 + 130)
	if got < 120*time.Microsecond || got > 135*time.Microsecond {
		t.Fatalf("page transfer = %v, want ≈ 128 µs", got)
	}
}

func TestTransferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	DefaultFlashBus().Transfer(-1)
}

func TestTransferPanicsUninitialised(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bus did not panic")
		}
	}()
	(FlashBus{}).Transfer(10)
}

func TestBandwidth(t *testing.T) {
	b := DefaultFlashBus()
	if got := b.BandwidthMBps(); math.Abs(got-33) > 0.5 {
		t.Fatalf("bandwidth = %v MB/s, want 33", got)
	}
}

func TestThroughput(t *testing.T) {
	// 4096 bytes in 100 µs = 40.96 MB/s.
	got := Throughput(4096, 100*time.Microsecond)
	if math.Abs(got-40.96) > 0.01 {
		t.Fatalf("throughput = %v, want 40.96", got)
	}
	if Throughput(4096, 0) != 0 {
		t.Fatal("zero-time throughput should be 0")
	}
}
