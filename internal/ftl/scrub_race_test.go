package ftl

import (
	"errors"
	"sync"
	"testing"

	"xlnand/internal/controller"
	"xlnand/internal/sim"
)

// TestScrubRacesLiveTraffic runs the background scrubber concurrently
// with live read/write/health-check traffic on the SAME partition —
// under `go test -race` this closes the scrub-vs-I/O coverage gap: the
// per-partition lock must serialise scrub relocation against host
// writes, GC rounds and the scrub-mark bookkeeping without deadlocking
// or corrupting the mapping.
func TestScrubRacesLiveTraffic(t *testing.T) {
	d := newDispatcher(t, 2, 8, 777)
	f, err := New(d, sim.DefaultEnv(), []PartitionSpec{
		{Name: "hot", Blocks: 8, Mode: sim.ModeNominal},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-age the array so reads correct a few bits and the low alarm
	// threshold below keeps the scrubber busy rather than idle.
	for die := 0; die < 2; die++ {
		for blk := 0; blk < 8; blk++ {
			if err := d.SetCycles(die, blk, 2e5); err != nil {
				t.Fatal(err)
			}
		}
	}
	const workingSet = 64
	data := pagePattern(9, 4096)
	for lpa := 0; lpa < workingSet; lpa++ {
		if _, err := f.Write("hot", lpa, data); err != nil {
			t.Fatal(err)
		}
	}

	const (
		trafficOps  = 300
		scrubPasses = 60
	)
	pol := ScrubPolicy{FractionOfT: 0.05} // mark aggressively: maximal contention
	var wg sync.WaitGroup
	fail := make(chan error, 4)

	// Writer/reader goroutine: host traffic on the partition.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < trafficOps; i++ {
			lpa := i % workingSet
			if i%3 == 0 {
				if _, err := f.Write("hot", lpa, data); err != nil {
					fail <- err
					return
				}
				continue
			}
			_, res, err := f.Read("hot", lpa)
			if err != nil {
				if errors.Is(err, controller.ErrUncorrectable) {
					continue // aged medium; loss is not what this test checks
				}
				fail <- err
				return
			}
			if _, err := f.CheckReadHealth("hot", lpa, res, pol); err != nil {
				fail <- err
				return
			}
		}
	}()

	// Scrubber goroutine: concurrent refresh passes on the same partition.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < scrubPasses; i++ {
			if _, err := f.Scrub("hot"); err != nil {
				fail <- err
				return
			}
		}
	}()

	// Observer goroutine: statistics surfaces must also be race-clean.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p, err := f.Partition("hot")
		if err != nil {
			fail <- err
			return
		}
		for i := 0; i < trafficOps; i++ {
			p.PendingScrubs()
			p.WriteAmplification()
			p.Retired()
			if _, _, err := f.WearSpread("hot"); err != nil {
				fail <- err
				return
			}
			if _, err := f.ScrubMarks("hot"); err != nil {
				fail <- err
				return
			}
		}
	}()

	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}

	// Quiesced: the mapping must still be fully consistent — every live
	// logical page readable through its (possibly relocated) mapping.
	lost := 0
	for lpa := 0; lpa < workingSet; lpa++ {
		if _, _, err := f.Read("hot", lpa); err != nil {
			if errors.Is(err, controller.ErrUncorrectable) {
				lost++
				continue
			}
			t.Fatalf("lpa %d unreadable after concurrent scrub: %v", lpa, err)
		}
	}
	if lost == workingSet {
		t.Fatalf("every page lost; partition state corrupted")
	}
}
