package ftl

import (
	"bytes"
	"testing"

	"xlnand/internal/controller"
	"xlnand/internal/dispatch"
	"xlnand/internal/nand"
	"xlnand/internal/sim"
	"xlnand/internal/stats"
)

// newDispatcher builds a single-die dispatcher for FTL tests.
func newDispatcher(t *testing.T, dies, blocks int, seed uint64) *dispatch.Dispatcher {
	t.Helper()
	env := sim.DefaultEnv()
	d, err := dispatch.New(dispatch.Config{
		Dies: dies, BlocksPerDie: blocks, Seed: seed,
		Env: env, Controller: controller.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// newFTL builds an FTL over a small device with the three paper service
// levels as partitions.
func newFTL(t *testing.T, blocksPerPart int) *FTL {
	t.Helper()
	d := newDispatcher(t, 1, 3*blocksPerPart, 321)
	f, err := New(d, sim.DefaultEnv(), []PartitionSpec{
		{Name: "system", Blocks: blocksPerPart, Mode: sim.ModeMinUBER},
		{Name: "media", Blocks: blocksPerPart, Mode: sim.ModeMaxRead},
		{Name: "scratch", Blocks: blocksPerPart, Mode: sim.ModeNominal},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func pagePattern(seed uint64, size int) []byte {
	r := stats.NewRNG(seed)
	out := make([]byte, size)
	for i := range out {
		out[i] = byte(r.Intn(256))
	}
	return out
}

func TestNewValidation(t *testing.T) {
	env := sim.DefaultEnv()
	d := newDispatcher(t, 1, 4, 1)
	if _, err := New(d, env, nil); err == nil {
		t.Fatal("no partitions accepted")
	}
	if _, err := New(d, env, []PartitionSpec{{Name: "x", Blocks: 1}}); err == nil {
		t.Fatal("1-block partition accepted")
	}
	if _, err := New(d, env, []PartitionSpec{{Name: "x", Blocks: 8}}); err == nil {
		t.Fatal("oversubscribed device accepted")
	}
}

// TestMultiDieStriping verifies that a partition's global block ids
// stripe round-robin across dies and that round trips work on every die.
func TestMultiDieStriping(t *testing.T) {
	d := newDispatcher(t, 2, 4, 99)
	f, err := New(d, sim.DefaultEnv(), []PartitionSpec{
		{Name: "data", Blocks: 6, Mode: sim.ModeMaxRead},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := f.Partition("data")
	seen := map[int]bool{}
	for _, bs := range p.blocks {
		die, blk := f.addr(bs.id)
		if blk >= 4 || die >= 2 {
			t.Fatalf("block %d mapped outside geometry: die %d block %d", bs.id, die, blk)
		}
		seen[die] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatal("partition blocks did not spread across both dies")
	}
	data := pagePattern(7, 4096)
	for lpa := 0; lpa < 2*p.pages; lpa++ { // spans >1 physical block
		if _, err := f.Write("data", lpa, data); err != nil {
			t.Fatal(err)
		}
	}
	for _, lpa := range []int{0, p.pages, 2*p.pages - 1} {
		got, _, err := f.Read("data", lpa)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("lpa %d corrupted across dies", lpa)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := newFTL(t, 2)
	data := pagePattern(1, 4096)
	if _, err := f.Write("media", 5, data); err != nil {
		t.Fatal(err)
	}
	got, res, err := f.Read("media", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip corrupted data")
	}
	if res.Alg != nand.ISPPDV {
		t.Fatalf("media partition wrote with %v, want ISPP-DV", res.Alg)
	}
}

func TestPartitionModesSteerKnobs(t *testing.T) {
	f := newFTL(t, 2)
	data := pagePattern(2, 4096)
	for _, part := range []string{"system", "media", "scratch"} {
		if _, err := f.Write(part, 0, data); err != nil {
			t.Fatal(err)
		}
	}
	sys, resSys, err := f.Read("system", 0)
	if err != nil {
		t.Fatal(err)
	}
	_, resScr, err := f.Read("scratch", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sys, data) {
		t.Fatal("system data corrupted")
	}
	if resSys.Alg != nand.ISPPDV {
		t.Fatal("min-UBER partition must program with DV")
	}
	if resScr.Alg != nand.ISPPSV {
		t.Fatal("nominal partition must program with SV")
	}
}

func TestReadErrors(t *testing.T) {
	f := newFTL(t, 2)
	if _, _, err := f.Read("media", 0); err == nil {
		t.Fatal("read of unwritten lpa accepted")
	}
	if _, _, err := f.Read("nope", 0); err == nil {
		t.Fatal("unknown partition accepted")
	}
	if _, _, err := f.Read("media", 1<<20); err == nil {
		t.Fatal("out-of-range lpa accepted")
	}
	if _, err := f.Write("media", -1, nil); err == nil {
		t.Fatal("negative lpa accepted")
	}
}

func TestOverwriteRemaps(t *testing.T) {
	f := newFTL(t, 2)
	v1 := pagePattern(3, 4096)
	v2 := pagePattern(4, 4096)
	if _, err := f.Write("scratch", 7, v1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write("scratch", 7, v2); err != nil {
		t.Fatal(err)
	}
	got, _, err := f.Read("scratch", 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v2) {
		t.Fatal("overwrite did not supersede old version")
	}
	p, _ := f.Partition("scratch")
	if p.HostWrites != 2 {
		t.Fatalf("host writes = %d", p.HostWrites)
	}
}

func TestTrim(t *testing.T) {
	f := newFTL(t, 2)
	if _, err := f.Write("scratch", 3, pagePattern(5, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := f.Trim("scratch", 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Read("scratch", 3); err == nil {
		t.Fatal("trimmed page still readable")
	}
	// Trimming an unwritten page is a no-op.
	if err := f.Trim("scratch", 4); err != nil {
		t.Fatal(err)
	}
	p, _ := f.Partition("scratch")
	if p.Trims != 1 {
		t.Fatalf("trims = %d", p.Trims)
	}
}

func TestGarbageCollectionSustainsOverwrites(t *testing.T) {
	if testing.Short() {
		t.Skip("GC endurance test skipped in -short mode")
	}
	f := newFTL(t, 3) // 3 blocks x 64 pages, 128 user pages
	p, _ := f.Partition("scratch")
	data := pagePattern(6, 4096)
	// Overwrite a working set larger than one block far beyond the raw
	// capacity: GC must relocate still-live pages and reclaim superseded
	// ones indefinitely.
	const workingSet = 80
	for i := 0; i < 6*64; i++ {
		lpa := i % workingSet
		if _, err := f.Write("scratch", lpa, data); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if p.Erases == 0 {
		t.Fatal("GC never erased a block")
	}
	if p.GCMoves == 0 {
		t.Fatal("GC never relocated a live page")
	}
	if wa := p.WriteAmplification(); wa < 1 || wa > 4 {
		t.Fatalf("write amplification %v implausible for a %d-page working set", wa, workingSet)
	}
	// All live data still intact.
	for lpa := 0; lpa < workingSet; lpa++ {
		got, _, err := f.Read("scratch", lpa)
		if err != nil {
			t.Fatalf("read lpa %d after GC: %v", lpa, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("lpa %d corrupted after GC", lpa)
		}
	}
}

func TestCapacityExhaustion(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity test skipped in -short mode")
	}
	f := newFTL(t, 2) // 64 user pages + 64 OP
	data := pagePattern(7, 4096)
	// Fill every logical page (fits), then keep all live and try to
	// exceed: the partition must fail cleanly, not corrupt.
	p, _ := f.Partition("scratch")
	for lpa := 0; lpa < p.Capacity(); lpa++ {
		if _, err := f.Write("scratch", lpa, data); err != nil {
			t.Fatalf("fill write %d: %v", lpa, err)
		}
	}
	// Everything is live; continued overwrites still work (each write
	// supersedes itself), which exercises GC with maximum live pressure.
	for i := 0; i < 32; i++ {
		if _, err := f.Write("scratch", i%p.Capacity(), data); err != nil {
			t.Fatalf("overwrite at full capacity: %v", err)
		}
	}
}

func TestWearLevelling(t *testing.T) {
	if testing.Short() {
		t.Skip("wear test skipped in -short mode")
	}
	f := newFTL(t, 3)
	data := pagePattern(8, 4096)
	for i := 0; i < 5*64; i++ {
		if _, err := f.Write("scratch", i%16, data); err != nil {
			t.Fatal(err)
		}
	}
	min, max, err := f.WearSpread("scratch")
	if err != nil {
		t.Fatal(err)
	}
	if max == 0 {
		t.Fatal("no wear recorded")
	}
	if max-min > 4 {
		t.Fatalf("wear spread %v..%v too wide for wear-aware GC", min, max)
	}
}

func TestPartitionIsolation(t *testing.T) {
	// Traffic in one partition must not touch another's blocks.
	f := newFTL(t, 2)
	data := pagePattern(9, 4096)
	if _, err := f.Write("media", 0, data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := f.Write("scratch", i%8, data); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := f.Read("media", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("media data disturbed by scratch traffic")
	}
	// Scratch wear must not leak onto media blocks.
	_, maxMedia, err := f.WearSpread("media")
	if err != nil {
		t.Fatal(err)
	}
	if maxMedia > 0 {
		t.Fatalf("media blocks erased %v times by foreign traffic", maxMedia)
	}
}

func TestServiceTimeAccounting(t *testing.T) {
	f := newFTL(t, 2)
	data := pagePattern(10, 4096)
	if _, err := f.Write("media", 0, data); err != nil {
		t.Fatal(err)
	}
	p, _ := f.Partition("media")
	afterWrite := p.ServiceTime
	if afterWrite <= 0 {
		t.Fatal("write time not accounted")
	}
	if _, _, err := f.Read("media", 0); err != nil {
		t.Fatal(err)
	}
	if p.ServiceTime <= afterWrite {
		t.Fatal("read time not accounted")
	}
}
