package ftl

import (
	"bytes"
	"testing"

	"xlnand/internal/controller"
)

// TestRepeatedScrubsDoNotLeakBlocks runs many mark/scrub cycles against
// steady host traffic and verifies the partition's free-space accounting
// never degrades (the stranded-block regression test).
func TestRepeatedScrubsDoNotLeakBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("scrub stress skipped in -short mode")
	}
	f := newFTL(t, 3)
	p, _ := f.Partition("scratch")
	data := pagePattern(30, 4096)

	for round := 0; round < 8; round++ {
		// Host traffic.
		for i := 0; i < 40; i++ {
			if _, err := f.Write("scratch", i%30, data); err != nil {
				t.Fatalf("round %d write %d: %v", round, i, err)
			}
		}
		// Synthetic health alarms on a couple of live pages.
		for _, lpa := range []int{0, 15} {
			res := &controller.ReadResult{Corrected: 60, T: 65}
			if _, err := f.CheckReadHealth("scratch", lpa, res, DefaultScrubPolicy()); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		if _, err := f.Scrub("scratch"); err != nil {
			t.Fatalf("round %d scrub: %v", round, err)
		}
		// Accounting invariants: every block is exactly one of frontier,
		// pool member, or data block; the pool is duplicate-free.
		seen := map[int]bool{}
		for _, idx := range p.freePool {
			if seen[idx] {
				t.Fatalf("round %d: duplicate pool entry %d", round, idx)
			}
			seen[idx] = true
			if idx == p.active {
				t.Fatalf("round %d: active block in pool", round)
			}
			if p.blocks[idx].writePtr != 0 || p.blocks[idx].livePages != 0 {
				t.Fatalf("round %d: dirty block %d in pool", round, idx)
			}
		}
	}
	// All live data intact after the churn.
	for lpa := 0; lpa < 30; lpa++ {
		got, _, err := f.Read("scratch", lpa)
		if err != nil {
			t.Fatalf("final read %d: %v", lpa, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("lpa %d corrupted", lpa)
		}
	}
}
