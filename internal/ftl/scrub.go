package ftl

import (
	"fmt"
	"sort"

	"xlnand/internal/controller"
)

// ScrubPolicy configures background data refresh: a page whose decode
// reports corrected errors at or above FractionOfT of the active
// capability — or that needed at least RetryAlarm recovery-ladder
// retries — marks its block for refresh; Scrub relocates such blocks'
// live data to fresh pages (healing read disturb and retention age, the
// stress mechanisms the device model accumulates).
type ScrubPolicy struct {
	// FractionOfT in (0, 1]: the corrected-errors alarm threshold as a
	// fraction of the capability the page was decoded with.
	FractionOfT float64
	// RetryAlarm marks a block for refresh when a read needed at least
	// this many recovery-ladder retries (0 disables retry-pressure
	// marking). A page paying the ladder is a page drifting toward
	// uncorrectable: relocating it re-centres its references for free.
	RetryAlarm int
	// DisturbRetryBudget is the reads-since-erase count past which a
	// block is considered near its read-disturb budget (0 disables the
	// guard). Every recovery-ladder re-sense — and every component
	// sense of a soft multi-sense read — is itself a disturb event, so
	// deep recovery walks on an already-stressed block push its
	// NEIGHBOURING pages toward the very failures the walk is trying to
	// fix. Past the budget, host reads are capped at DisturbRetryCap
	// hard retries (which also skips the soft multi-sense rung — it
	// only unlocks past the full hard ladder) and the block is marked
	// for scrub relocation instead: the refresh heals the disturb count
	// outright, where a deeper ladder would only have compounded it.
	DisturbRetryBudget float64
	// DisturbRetryCap is the per-read hard-retry budget applied past
	// DisturbRetryBudget (0 = single-shot).
	DisturbRetryCap int
}

// DefaultScrubPolicy alarms at 70% of the correction budget, or on any
// read that needed the recovery ladder; the disturb-aware retry guard
// engages at 50k reads since erase, capping stressed blocks at one
// re-sense and preferring early relocation.
func DefaultScrubPolicy() ScrubPolicy {
	return ScrubPolicy{FractionOfT: 0.7, RetryAlarm: 1, DisturbRetryBudget: 5e4, DisturbRetryCap: 1}
}

// ScrubReport summarises one scrub pass.
type ScrubReport struct {
	BlocksRefreshed int
	PagesMoved      int
	Uncorrectable   int
	// DeepRecovered counts pages the normal read lost during this pass
	// but the deep-retry recovery attempt saved.
	DeepRecovered int
}

// CheckReadHealth inspects a read result against the policy and records
// the page's block for refresh when the margin has thinned. It returns
// true when the block was newly marked.
func (f *FTL) CheckReadHealth(part string, lpa int, res *controller.ReadResult, pol ScrubPolicy) (bool, error) {
	if pol.FractionOfT <= 0 || pol.FractionOfT > 1 {
		return false, fmt.Errorf("ftl: scrub threshold %g outside (0,1]", pol.FractionOfT)
	}
	if pol.RetryAlarm < 0 {
		return false, fmt.Errorf("ftl: negative scrub retry alarm %d", pol.RetryAlarm)
	}
	if pol.DisturbRetryBudget < 0 || pol.DisturbRetryCap < 0 {
		return false, fmt.Errorf("ftl: negative disturb retry guard (%g, %d)",
			pol.DisturbRetryBudget, pol.DisturbRetryCap)
	}
	p, err := f.Partition(part)
	if err != nil {
		return false, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if lpa < 0 || lpa >= p.userPages || p.mapping[lpa] == invalidPPA {
		return false, fmt.Errorf("ftl: lpa %d not live in %q", lpa, part)
	}
	if p.mapping[lpa] == lostPPA {
		// The page's only copy was lost by a concurrent GC relocation
		// between the caller's read and this health check: nothing is
		// left to mark, and under concurrent scrub/host traffic that is
		// an ordinary interleaving, not a caller error.
		return false, nil
	}
	if res == nil {
		return false, nil
	}
	marginThin := float64(res.Corrected) >= pol.FractionOfT*float64(res.T)
	retryPressure := pol.RetryAlarm > 0 && res.Retries >= pol.RetryAlarm
	if !marginThin && !retryPressure {
		return false, nil
	}
	blk := p.mapping[lpa] / p.pages
	if p.scrubMarks == nil {
		p.scrubMarks = make(map[int]bool)
	}
	if p.scrubMarks[blk] {
		return false, nil
	}
	p.scrubMarks[blk] = true
	return true, nil
}

// PendingScrubs returns the number of blocks marked for refresh.
func (p *Partition) PendingScrubs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.scrubMarks)
}

// ScrubMarks returns the partition-local indices of the blocks currently
// marked for refresh, in ascending order (the order Scrub will process
// them in).
func (f *FTL) ScrubMarks(part string) ([]int, error) {
	p, err := f.Partition(part)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return sortedMarks(p.scrubMarks), nil
}

func sortedMarks(marks map[int]bool) []int {
	out := make([]int, 0, len(marks))
	for blk := range marks {
		out = append(out, blk)
	}
	sort.Ints(out)
	return out
}

// Scrub rewrites every live page of each marked block to fresh locations
// (new physical pages on a freshly-programmed block have zero retention
// age, and the victims' eventual erase clears their read-disturb count).
// Marked blocks are processed in ascending index order, so a scrub pass
// consumes the device's fault-injection streams identically across runs
// — the determinism contract lifetime scenarios depend on.
func (f *FTL) Scrub(part string) (ScrubReport, error) {
	var rep ScrubReport
	p, err := f.Partition(part)
	if err != nil {
		return rep, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	marks := sortedMarks(p.scrubMarks)
	p.scrubMarks = nil
	if f.trace != nil && len(marks) > 0 {
		scrubStart := f.vnow()
		defer func() {
			f.trace.Span2(f.traceTid, "scrub", scrubStart, f.vnow()-scrubStart,
				"blocks", int64(rep.BlocksRefreshed), "moved", int64(rep.PagesMoved))
		}()
	}
	for _, blk := range marks {
		bs := p.blocks[blk]
		if bs.livePages == 0 && bs.writePtr == 0 {
			continue // reclaimed by GC between mark and scrub
		}
		// Move the write frontier off the victim so relocated copies
		// land on a different block (otherwise the refresh would chase
		// its own writes and heal nothing).
		if p.active == blk && len(p.freePool) >= 2 {
			p.active = p.freePool[0]
			p.freePool = p.freePool[1:]
			nb := p.blocks[p.active]
			nb.writePtr = 0
		}
		deepBefore := p.DeepRecovered
		moved, uncorrectable, err := f.relocateLive(p, bs)
		rep.Uncorrectable += uncorrectable
		rep.DeepRecovered += p.DeepRecovered - deepBefore
		if err != nil {
			return rep, fmt.Errorf("ftl: scrub block %d: %w", bs.id, err)
		}
		if moved > 0 || bs.livePages == 0 {
			rep.BlocksRefreshed++
			rep.PagesMoved += moved
		}
		// A fully-dead non-frontier victim would strand outside the free
		// pool (GC only collects sealed blocks): erase and reclaim it now.
		if bs.livePages == 0 && blk != p.active && bs.writePtr > 0 && !bs.retired {
			if err := f.erasePhys(bs.id); err != nil {
				return rep, err
			}
			bs.writePtr = 0
			bs.lastReads = 0 // erase heals the disturb counter
			for i := range bs.lbaOf {
				bs.lbaOf[i] = invalidPPA
			}
			p.Erases++
			p.freePool = append(p.freePool, blk)
		}
	}
	return rep, nil
}
