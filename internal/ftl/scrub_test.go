package ftl

import (
	"bytes"
	"testing"

	"xlnand/internal/controller"
)

func TestCheckReadHealthValidation(t *testing.T) {
	f := newFTL(t, 2)
	if _, err := f.CheckReadHealth("scratch", 0, nil, ScrubPolicy{FractionOfT: 0}); err == nil {
		t.Fatal("zero threshold accepted")
	}
	if _, err := f.CheckReadHealth("scratch", 0, nil, DefaultScrubPolicy()); err == nil {
		t.Fatal("unwritten lpa accepted")
	}
	if _, err := f.CheckReadHealth("nope", 0, nil, DefaultScrubPolicy()); err == nil {
		t.Fatal("unknown partition accepted")
	}
}

func TestHealthyReadsDoNotMark(t *testing.T) {
	f := newFTL(t, 2)
	data := pagePattern(20, 4096)
	if _, err := f.Write("scratch", 0, data); err != nil {
		t.Fatal(err)
	}
	_, res, err := f.Read("scratch", 0)
	if err != nil {
		t.Fatal(err)
	}
	marked, err := f.CheckReadHealth("scratch", 0, res, DefaultScrubPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if marked {
		t.Fatal("fresh healthy read marked for scrub")
	}
	p, _ := f.Partition("scratch")
	if p.PendingScrubs() != 0 {
		t.Fatal("pending scrubs on a healthy partition")
	}
}

func TestDegradedReadsMarkAndScrubHeals(t *testing.T) {
	if testing.Short() {
		t.Skip("scrub integration skipped in -short mode")
	}
	f := newFTL(t, 3)
	p, _ := f.Partition("scratch")
	data := pagePattern(21, 4096)
	if _, err := f.Write("scratch", 0, data); err != nil {
		t.Fatal(err)
	}
	// Age the physical block under the page so the correction margin
	// thins (the page was written at t=3; a couple of raw errors per
	// read is a 2/3 margin burn) and add a mild bake.
	physBlock := p.blocks[p.mapping[0]/p.pages].id
	die, blk := f.addr(physBlock)
	if err := f.q.Dispatcher().SetCycles(die, blk, 1e4); err != nil {
		t.Fatal(err)
	}
	if err := f.q.Dispatcher().AdvanceTime(1e3); err != nil {
		t.Fatal(err)
	}

	// Read until the health check trips (corrected errors vs t=3-ish
	// margin at that wear; use an aggressive threshold to be
	// deterministic about tripping).
	pol := ScrubPolicy{FractionOfT: 0.05}
	marked := false
	var res *controller.ReadResult
	for i := 0; i < 50 && !marked; i++ {
		var err error
		_, res, err = f.Read("scratch", 0)
		if err != nil {
			t.Fatal(err)
		}
		marked, err = f.CheckReadHealth("scratch", 0, res, pol)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !marked {
		t.Skipf("degradation did not trip the %v threshold (corrected=%d of t=%d)",
			pol.FractionOfT, res.Corrected, res.T)
	}
	if p.PendingScrubs() != 1 {
		t.Fatalf("pending scrubs = %d", p.PendingScrubs())
	}
	rep, err := f.Scrub("scratch")
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksRefreshed != 1 || rep.PagesMoved < 1 {
		t.Fatalf("scrub report %+v", rep)
	}
	if p.PendingScrubs() != 0 {
		t.Fatal("marks not cleared after scrub")
	}
	// Data survives and now lives on a fresh physical page.
	got, _, err := f.Read("scratch", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("scrub lost data")
	}
	newBlock := p.blocks[p.mapping[0]/p.pages].id
	if newBlock == physBlock {
		t.Fatal("scrub did not relocate the page")
	}
}

func TestScrubOnCleanPartitionIsNoop(t *testing.T) {
	f := newFTL(t, 2)
	rep, err := f.Scrub("scratch")
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksRefreshed != 0 || rep.PagesMoved != 0 {
		t.Fatalf("no-op scrub produced %+v", rep)
	}
}

func TestScrubDoubleMarkDeduplicated(t *testing.T) {
	f := newFTL(t, 2)
	data := pagePattern(22, 4096)
	if _, err := f.Write("scratch", 0, data); err != nil {
		t.Fatal(err)
	}
	res := &controller.ReadResult{Corrected: 100, T: 3} // synthetic alarm
	first, err := f.CheckReadHealth("scratch", 0, res, DefaultScrubPolicy())
	if err != nil {
		t.Fatal(err)
	}
	second, err := f.CheckReadHealth("scratch", 0, res, DefaultScrubPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !first || second {
		t.Fatalf("mark dedup broken: %v %v", first, second)
	}
	p, _ := f.Partition("scratch")
	if p.PendingScrubs() != 1 {
		t.Fatalf("pending = %d", p.PendingScrubs())
	}
}
