package ftl

import (
	"testing"

	"xlnand/internal/controller"
	"xlnand/internal/sim"
)

// guardFTL builds a single-partition FTL with the disturb-aware retry
// guard installed.
func guardFTL(t *testing.T, pol ScrubPolicy) *FTL {
	t.Helper()
	d := newDispatcher(t, 1, 4, 99)
	f, err := New(d, sim.DefaultEnv(), []PartitionSpec{
		{Name: "p0", Blocks: 4, Mode: sim.ModeNominal},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.SetRetryGuard(pol)
	return f
}

// saturateReads inflates a physical block's read-disturb counter with
// raw array reads (outside the host path).
func saturateReads(t *testing.T, f *FTL, global, n int) {
	t.Helper()
	die, block := f.addr(global)
	err := f.q.Dispatcher().WithController(die, func(c *controller.Controller) {
		for r := 0; r < n; r++ {
			if _, _, err := c.Device().Read(block, 0); err != nil {
				t.Errorf("raw disturb read: %v", err)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDisturbGuardCapsLadderAndMarks: once a block crosses the disturb
// budget, host reads of it run with the capped recovery budget and the
// block is queued for scrub relocation.
func TestDisturbGuardCapsLadderAndMarks(t *testing.T) {
	pol := ScrubPolicy{FractionOfT: 0.7, DisturbRetryBudget: 200, DisturbRetryCap: 1}
	f := guardFTL(t, pol)
	data := pagePattern(5, f.geo.PageDataBytes)
	if _, err := f.Write("p0", 0, data); err != nil {
		t.Fatal(err)
	}
	blk, err := f.BlockOf("p0", 0)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := f.Partition("p0")
	global := p.blocks[blk].id

	// Below the budget: the guard stays out of the way.
	if _, res, err := f.Read("p0", 0); err != nil || res == nil {
		t.Fatalf("unguarded read: %v", err)
	}
	if p.DisturbCapped != 0 || p.PendingScrubs() != 0 {
		t.Fatalf("guard engaged below budget: capped=%d marks=%d", p.DisturbCapped, p.PendingScrubs())
	}

	saturateReads(t, f, global, 220)
	if reads, err := f.q.Dispatcher().BlockReads(f.addr(global)); err != nil || reads < 220 {
		t.Fatalf("disturb counter %g after saturation (%v)", reads, err)
	}

	// The guard budgets against the counter piggybacked on read results
	// (no control-plane hop per read), so the first read after the raw
	// saturation still runs unguarded and records the climate...
	if _, res, err := f.Read("p0", 0); err != nil || res == nil {
		t.Fatalf("observation read: %v", err)
	}
	if p.DisturbCapped != 0 {
		t.Fatal("guard engaged before a read observed the counter")
	}

	// ...and the next read runs capped.
	got, res, err := f.Read("p0", 0)
	if err != nil {
		t.Fatalf("guarded read lost the page: %v", err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("guarded read corrupted byte %d", i)
		}
	}
	if res.Retries > pol.DisturbRetryCap {
		t.Fatalf("guarded read paid %d retries over cap %d", res.Retries, pol.DisturbRetryCap)
	}
	if res.SoftSenses != 0 {
		t.Fatal("guarded read paid a soft multi-sense walk")
	}
	if p.DisturbCapped != 1 {
		t.Fatalf("DisturbCapped = %d, want 1", p.DisturbCapped)
	}
	marks, err := f.ScrubMarks("p0")
	if err != nil {
		t.Fatal(err)
	}
	if len(marks) != 1 || marks[0] != blk {
		t.Fatalf("guard marked %v, want [%d]", marks, blk)
	}

	// The scrub relocation heals the stress: the block is refreshed and
	// the next read runs unguarded (new block, reads reset by erase once
	// GC reclaims the victim).
	rep, err := f.Scrub("p0")
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksRefreshed != 1 || rep.PagesMoved != 1 {
		t.Fatalf("scrub report %+v, want one block, one page", rep)
	}
	newBlk, err := f.BlockOf("p0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if newBlk == blk {
		t.Fatal("scrub left the page on the disturb-saturated block")
	}
	capped := p.DisturbCapped
	if _, _, err := f.Read("p0", 0); err != nil {
		t.Fatal(err)
	}
	if p.DisturbCapped != capped {
		t.Fatal("relocated page still read through the guard")
	}
}

// TestDisturbGuardDisabledByDefault: a zero budget never caps.
func TestDisturbGuardDisabledByDefault(t *testing.T) {
	f := guardFTL(t, ScrubPolicy{FractionOfT: 0.7})
	data := pagePattern(6, f.geo.PageDataBytes)
	if _, err := f.Write("p0", 0, data); err != nil {
		t.Fatal(err)
	}
	blk, _ := f.BlockOf("p0", 0)
	p, _ := f.Partition("p0")
	saturateReads(t, f, p.blocks[blk].id, 500)
	if _, _, err := f.Read("p0", 0); err != nil {
		t.Fatal(err)
	}
	if p.DisturbCapped != 0 {
		t.Fatal("disabled guard capped a read")
	}
}

// TestDisturbGuardPolicyValidation: negative knobs are rejected by the
// health-check entry point.
func TestDisturbGuardPolicyValidation(t *testing.T) {
	f := guardFTL(t, ScrubPolicy{})
	data := pagePattern(7, f.geo.PageDataBytes)
	if _, err := f.Write("p0", 0, data); err != nil {
		t.Fatal(err)
	}
	_, res, err := f.Read("p0", 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := ScrubPolicy{FractionOfT: 0.7, DisturbRetryBudget: -1}
	if _, err := f.CheckReadHealth("p0", 0, res, bad); err == nil {
		t.Fatal("negative disturb budget accepted")
	}
	bad = ScrubPolicy{FractionOfT: 0.7, DisturbRetryCap: -2}
	if _, err := f.CheckReadHealth("p0", 0, res, bad); err == nil {
		t.Fatal("negative disturb cap accepted")
	}
}
