// Package ftl implements a flash translation layer over the cross-layer
// memory sub-system — the paper's §7 future work ("expose differentiated
// storage services to applications") made concrete. The physical block
// space, striped across every die behind the dispatcher, is split into
// named partitions, each bound to one of the paper's service levels
// (nominal / min-UBER / max-read); the FTL gives every partition a
// logical-page address space with out-of-place writes, garbage
// collection and wear-aware victim selection. Each operation is
// submitted through the dispatcher with the owning partition's mode as a
// per-request override, so heterogeneous partitions never fight over
// global controller state.
package ftl

import (
	"context"
	"fmt"
	"time"

	"xlnand/internal/controller"
	"xlnand/internal/dispatch"
	"xlnand/internal/sim"
)

// PartitionSpec declares one storage service at construction time.
type PartitionSpec struct {
	Name string
	// Blocks is the number of physical flash blocks owned by the
	// partition (including over-provisioning; at least 2).
	Blocks int
	// Mode is the cross-layer service level for all data in the
	// partition.
	Mode sim.Mode
}

// ppa is a physical page address.
type ppa struct {
	block int
	page  int
}

const invalidPPA = -1

// blockState tracks one physical block inside a partition.
type blockState struct {
	id        int // global block index (striped across dies)
	writePtr  int // next free page (pages are programmed in order)
	livePages int
	// lbaOf maps page index -> logical page (or -1), for GC relocation.
	lbaOf []int
}

// Partition is one differentiated storage service.
type Partition struct {
	Name string
	Mode sim.Mode

	blocks    []*blockState
	active    int   // index into blocks: current write frontier
	freePool  []int // indices of erased blocks
	mapping   []int // logical page -> encoded PPA (block*pages + page), -1 if unwritten
	pages     int   // pages per block
	userPages int   // exported capacity in pages

	// statistics
	HostWrites  int
	HostReads   int
	GCMoves     int
	Erases      int
	Trims       int
	ServiceTime time.Duration

	// scrubMarks holds partition-local block indices awaiting refresh
	// (see scrub.go).
	scrubMarks map[int]bool
}

// FTL is the translation layer over one multi-die dispatcher.
type FTL struct {
	q     *dispatch.Queue
	env   sim.Env
	geo   dispatch.Geometry
	parts []*Partition
}

// New builds an FTL over the dispatcher, carving the device's blocks
// (striped across dies) into the declared partitions. Every partition
// needs at least two blocks (one of them stays free for garbage
// collection) and the total must fit the device.
func New(d *dispatch.Dispatcher, env sim.Env, specs []PartitionSpec) (*FTL, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("ftl: no partitions declared")
	}
	total := 0
	for _, s := range specs {
		if s.Blocks < 2 {
			return nil, fmt.Errorf("ftl: partition %q needs >= 2 blocks", s.Name)
		}
		total += s.Blocks
	}
	geo := d.Geometry()
	if total > geo.Dies*geo.BlocksPerDie {
		return nil, fmt.Errorf("ftl: partitions need %d blocks, device has %d",
			total, geo.Dies*geo.BlocksPerDie)
	}
	f := &FTL{q: d.NewQueue(), env: env, geo: geo}
	next := 0
	pages := geo.PagesPerBlock
	for _, s := range specs {
		p := &Partition{
			Name:      s.Name,
			Mode:      s.Mode,
			pages:     pages,
			userPages: (s.Blocks - 1) * pages, // one block of over-provisioning
		}
		for b := 0; b < s.Blocks; b++ {
			bs := &blockState{id: next, lbaOf: make([]int, pages)}
			for i := range bs.lbaOf {
				bs.lbaOf[i] = invalidPPA
			}
			p.blocks = append(p.blocks, bs)
			next++
		}
		p.mapping = make([]int, p.userPages)
		for i := range p.mapping {
			p.mapping[i] = invalidPPA
		}
		// Block 0 is the first frontier; the rest start in the free pool.
		p.active = 0
		for b := 1; b < len(p.blocks); b++ {
			p.freePool = append(p.freePool, b)
		}
		f.parts = append(f.parts, p)
	}
	return f, nil
}

// addr maps a global block id onto its (die, block) pair. Consecutive
// ids stripe round-robin across dies so every partition's blocks spread
// over the array and its traffic interleaves.
func (f *FTL) addr(global int) (die, block int) {
	return global % f.geo.Dies, global / f.geo.Dies
}

// writePhys programs one physical page under the partition's service
// level (the dispatcher resolves algorithm and capability per request).
func (f *FTL) writePhys(p *Partition, global, page int, data []byte) (*controller.WriteResult, error) {
	die, block := f.addr(global)
	mode := p.Mode
	comp, err := f.q.Do(context.Background(), dispatch.Request{
		Op: dispatch.OpWrite, Die: die, Block: block, Page: page,
		Data: data, Mode: &mode,
	})
	if err != nil {
		return comp.Write, err
	}
	return comp.Write, nil
}

// readPhys reads one physical page through the ECC path.
func (f *FTL) readPhys(global, page int) (*controller.ReadResult, error) {
	die, block := f.addr(global)
	comp, err := f.q.Do(context.Background(), dispatch.Request{
		Op: dispatch.OpRead, Die: die, Block: block, Page: page,
	})
	return comp.Read, err
}

// erasePhys erases one physical block.
func (f *FTL) erasePhys(global int) error {
	die, block := f.addr(global)
	_, err := f.q.Do(context.Background(), dispatch.Request{
		Op: dispatch.OpErase, Die: die, Block: block,
	})
	return err
}

// cyclesOf returns a global block's program/erase wear.
func (f *FTL) cyclesOf(global int) (float64, error) {
	die, block := f.addr(global)
	return f.q.Dispatcher().Cycles(die, block)
}

// Partitions returns the declared services.
func (f *FTL) Partitions() []*Partition { return f.parts }

// Partition returns a partition by name.
func (f *FTL) Partition(name string) (*Partition, error) {
	for _, p := range f.parts {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("ftl: unknown partition %q", name)
}

// Capacity returns the exported size of a partition in logical pages.
func (p *Partition) Capacity() int { return p.userPages }

// Write stores one logical page into the partition, superseding any
// previous version (out-of-place update). The old copy is invalidated
// before space allocation so that an overwrite at 100% logical
// utilisation can still reclaim space — a simulator simplification that
// trades power-fail atomicity (which this model does not exercise) for
// the textbook GC invariant.
func (f *FTL) Write(part string, lpa int, data []byte) error {
	p, err := f.Partition(part)
	if err != nil {
		return err
	}
	if lpa < 0 || lpa >= p.userPages {
		return fmt.Errorf("ftl: lpa %d outside partition %q capacity %d", lpa, part, p.userPages)
	}
	if old := p.mapping[lpa]; old != invalidPPA {
		ob, op := old/p.pages, old%p.pages
		p.blocks[ob].livePages--
		p.blocks[ob].lbaOf[op] = invalidPPA
		p.mapping[lpa] = invalidPPA
	}
	bs, page, err := f.allocate(p)
	if err != nil {
		return err
	}
	wr, err := f.writePhys(p, bs.id, page, data)
	if err != nil {
		return fmt.Errorf("ftl: program %d.%d: %w", bs.id, page, err)
	}
	p.ServiceTime += wr.Latency.Program
	p.mapping[lpa] = localPPA(p, bs) + page
	bs.lbaOf[page] = lpa
	bs.livePages++
	p.HostWrites++
	return nil
}

// localPPA encodes the partition-local block index of bs.
func localPPA(p *Partition, bs *blockState) int {
	for i, b := range p.blocks {
		if b == bs {
			return i * p.pages
		}
	}
	panic("ftl: block not in partition")
}

// Read fetches one logical page through the ECC path.
func (f *FTL) Read(part string, lpa int) ([]byte, *controller.ReadResult, error) {
	p, err := f.Partition(part)
	if err != nil {
		return nil, nil, err
	}
	if lpa < 0 || lpa >= p.userPages {
		return nil, nil, fmt.Errorf("ftl: lpa %d outside partition %q", lpa, part)
	}
	enc := p.mapping[lpa]
	if enc == invalidPPA {
		return nil, nil, fmt.Errorf("ftl: lpa %d of %q never written", lpa, part)
	}
	bs := p.blocks[enc/p.pages]
	res, err := f.readPhys(bs.id, enc%p.pages)
	if err != nil {
		return nil, res, err
	}
	p.HostReads++
	p.ServiceTime += res.Latency.Total()
	return res.Data, res, nil
}

// Trim drops a logical page's mapping, freeing its physical copy for GC.
func (f *FTL) Trim(part string, lpa int) error {
	p, err := f.Partition(part)
	if err != nil {
		return err
	}
	if lpa < 0 || lpa >= p.userPages {
		return fmt.Errorf("ftl: lpa %d outside partition %q", lpa, part)
	}
	if enc := p.mapping[lpa]; enc != invalidPPA {
		bs := p.blocks[enc/p.pages]
		bs.livePages--
		bs.lbaOf[enc%p.pages] = invalidPPA
		p.mapping[lpa] = invalidPPA
		p.Trims++
	}
	return nil
}

// allocate returns the next free physical page of the partition's write
// frontier. One erased block is always held in reserve as the garbage
// collector's relocation destination (invariant: the free pool never
// empties outside collect); host writes may consume pool blocks only
// down to that reserve.
func (f *FTL) allocate(p *Partition) (*blockState, int, error) {
	bs := p.blocks[p.active]
	if bs.writePtr < p.pages {
		page := bs.writePtr
		bs.writePtr++
		return bs, page, nil
	}
	// Frontier sealed. Take a pool block if the reserve stays intact.
	if len(p.freePool) >= 2 {
		p.active = p.freePool[0]
		p.freePool = p.freePool[1:]
		nb := p.blocks[p.active]
		if nb.writePtr != 0 {
			return nil, 0, fmt.Errorf("ftl: fresh frontier block %d not empty", nb.id)
		}
		nb.writePtr = 1
		return nb, 0, nil
	}
	// Otherwise reclaim: collect moves the victim's live pages into the
	// reserved block, which becomes the new (partially filled) frontier.
	if err := f.collect(p); err != nil {
		return nil, 0, err
	}
	nb := p.blocks[p.active]
	if nb.writePtr >= p.pages {
		return nil, 0, fmt.Errorf("ftl: partition %q out of space (capacity %d pages)", p.Name, p.userPages)
	}
	page := nb.writePtr
	nb.writePtr++
	return nb, page, nil
}

// collect performs one garbage-collection round: the sealed block with
// the fewest live pages (lowest wear as tie-break, levelling block usage)
// is relocated into the reserved free block, which becomes the new write
// frontier; the victim is erased and joins the pool.
func (f *FTL) collect(p *Partition) error {
	if len(p.freePool) == 0 {
		return fmt.Errorf("ftl: partition %q lost its GC reserve (internal invariant)", p.Name)
	}
	victim := -1
	for i, bs := range p.blocks {
		if bs.writePtr < p.pages {
			continue // only sealed (fully written) blocks are candidates
		}
		if victim == -1 || f.betterVictim(p, i, victim) {
			victim = i
		}
	}
	if victim == -1 {
		return fmt.Errorf("ftl: partition %q has no sealed block to collect", p.Name)
	}
	vb := p.blocks[victim]
	if vb.livePages == p.pages {
		return fmt.Errorf("ftl: partition %q full of live data; over-provisioning exhausted", p.Name)
	}
	destIdx := p.freePool[0]
	p.freePool = p.freePool[1:]
	dest := p.blocks[destIdx]
	if dest.writePtr != 0 {
		return fmt.Errorf("ftl: GC destination block %d not erased", dest.id)
	}
	for page, lpa := range vb.lbaOf {
		if lpa == invalidPPA {
			continue
		}
		res, err := f.readPhys(vb.id, page)
		if err != nil {
			return fmt.Errorf("ftl: GC read %d.%d: %w", vb.id, page, err)
		}
		if _, err := f.writePhys(p, dest.id, dest.writePtr, res.Data); err != nil {
			return fmt.Errorf("ftl: GC program: %w", err)
		}
		vb.livePages--
		vb.lbaOf[page] = invalidPPA
		p.mapping[lpa] = destIdx*p.pages + dest.writePtr
		dest.lbaOf[dest.writePtr] = lpa
		dest.livePages++
		dest.writePtr++
		p.GCMoves++
	}
	if err := f.erasePhys(vb.id); err != nil {
		return err
	}
	vb.writePtr = 0
	vb.livePages = 0
	for i := range vb.lbaOf {
		vb.lbaOf[i] = invalidPPA
	}
	p.Erases++
	p.freePool = append(p.freePool, victim)
	p.active = destIdx
	return nil
}

// betterVictim ranks GC candidates: fewer live pages first, then lower
// wear (erase count) to level block usage.
func (f *FTL) betterVictim(p *Partition, a, b int) bool {
	ba, bb := p.blocks[a], p.blocks[b]
	if ba.livePages != bb.livePages {
		return ba.livePages < bb.livePages
	}
	ca, _ := f.cyclesOf(ba.id)
	cb, _ := f.cyclesOf(bb.id)
	return ca < cb
}

// WriteAmplification returns total device writes / host writes for the
// partition (1.0 when GC never ran).
func (p *Partition) WriteAmplification() float64 {
	if p.HostWrites == 0 {
		return 0
	}
	return float64(p.HostWrites+p.GCMoves) / float64(p.HostWrites)
}

// WearSpread returns the min and max erase counts across the partition's
// blocks — the wear-leveling quality metric.
func (f *FTL) WearSpread(part string) (min, max float64, err error) {
	p, err := f.Partition(part)
	if err != nil {
		return 0, 0, err
	}
	for i, bs := range p.blocks {
		c, err := f.cyclesOf(bs.id)
		if err != nil {
			return 0, 0, err
		}
		if i == 0 || c < min {
			min = c
		}
		if i == 0 || c > max {
			max = c
		}
	}
	return min, max, nil
}
