// Package ftl implements a flash translation layer over the cross-layer
// memory sub-system — the paper's §7 future work ("expose differentiated
// storage services to applications") made concrete. The physical block
// space, striped across every die behind the dispatcher, is split into
// named partitions, each bound to one of the paper's service levels
// (nominal / min-UBER / max-read); the FTL gives every partition a
// logical-page address space with out-of-place writes, garbage
// collection and wear-aware victim selection. Each operation is
// submitted through the dispatcher with the owning partition's mode as a
// per-request override, so heterogeneous partitions never fight over
// global controller state.
package ftl

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"xlnand/internal/controller"
	"xlnand/internal/dispatch"
	"xlnand/internal/obs"
	"xlnand/internal/sim"
)

// PartitionSpec declares one storage service at construction time.
type PartitionSpec struct {
	Name string
	// Blocks is the number of physical flash blocks owned by the
	// partition (including over-provisioning; at least 2).
	Blocks int
	// Mode is the cross-layer service level for all data in the
	// partition.
	Mode sim.Mode
}

// ppa is a physical page address.
type ppa struct {
	block int
	page  int
}

const (
	invalidPPA = -1
	// lostPPA marks a logical page whose only physical copy failed an
	// ECC decode during garbage collection: the FTL had to erase the
	// block, so the page is a tracked media error — reads fail with
	// ErrUncorrectable until the host rewrites it.
	lostPPA = -2
)

// blockState tracks one physical block inside a partition.
type blockState struct {
	id        int // global block index (striped across dies)
	writePtr  int // next free page (pages are programmed in order)
	livePages int
	// lbaOf maps page index -> logical page (or -1), for GC relocation.
	lbaOf []int
	// retired blocks are out of rotation permanently: never a frontier,
	// never a GC destination or victim, never erased again. Any stale
	// live mappings left behind by an uncorrectable relocation read keep
	// serving reads from the retired block.
	retired bool
	// lastReads caches the block's reads-since-erase counter as last
	// reported by a read result (ReadResult.BlockReads): the
	// disturb-aware retry guard budgets against it without paying a
	// control-plane round trip per host read. At most one read stale,
	// which a threshold guard tolerates by construction.
	lastReads float64
}

// Partition is one differentiated storage service.
//
// Every public FTL operation serialises on the partition it targets, so
// host traffic, the background scrubber and mode retuning may run
// concurrently from different goroutines. The exported statistics fields
// are snapshots: read them through the partition's methods, or only after
// concurrent traffic has quiesced.
type Partition struct {
	Name string
	Mode sim.Mode

	// mu guards all mutable partition state (blocks, mapping, pools,
	// statistics, scrub marks, Mode).
	mu sync.Mutex

	blocks    []*blockState
	active    int   // index into blocks: current write frontier
	freePool  []int // indices of erased blocks
	mapping   []int // logical page -> encoded PPA (block*pages + page), -1 if unwritten
	pages     int   // pages per block
	userPages int   // exported capacity in pages

	// statistics
	HostWrites    int
	HostReads     int
	GCMoves       int
	Erases        int
	Trims         int
	RetiredBlocks int
	// LostPages counts logical pages whose only copy failed decode
	// during a GC relocation (tracked media errors).
	LostPages int
	// DisturbCapped counts host reads whose recovery budget was capped
	// by the disturb-aware retry guard (the block was near its
	// read-disturb budget and got marked for relocation instead).
	DisturbCapped int
	// DeepRecovered counts pages that failed the normal read during a
	// relocation (GC, scrub, retirement) but were saved by the one
	// deep-retry attempt at the device's full recovery ladder.
	DeepRecovered int
	// RelocRetries counts recovery-ladder re-senses paid by relocation
	// reads (GC, scrub, retirement — deep-retry walks included). These
	// occupy the dispatcher's timeline like any host read's retries but
	// never pass through the host read path, so they are tracked here.
	RelocRetries int
	ServiceTime  time.Duration

	// scrubMarks holds partition-local block indices awaiting refresh
	// (see scrub.go).
	scrubMarks map[int]bool

	// Lean host-read scratch (guarded by mu like everything else): the
	// allocation-free ReadInto path stores its result here and passes
	// capRetries by address, so a steady-state host read allocates
	// nothing at all.
	readRes    controller.ReadResult
	capRetries int
}

// FTL is the translation layer over one multi-die dispatcher.
type FTL struct {
	q     *dispatch.Queue
	env   sim.Env
	geo   dispatch.Geometry
	parts []*Partition

	// noDeepRetry disables the last-chance full-ladder relocation read
	// (SetDeepRetry): recovery ablations need relocation losses to be
	// as honest as host-read losses.
	noDeepRetry bool

	// retryGuard holds the disturb-aware retry policy (SetRetryGuard):
	// host reads of blocks past ScrubPolicy.DisturbRetryBudget reads
	// since erase are capped at DisturbRetryCap hard retries — skipping
	// soft multi-sense walks entirely — and their block is marked for
	// early scrub relocation instead of deeper recovery.
	retryGuard ScrubPolicy

	// trace, when non-nil, records scrub passes, GC rounds and
	// deep-retry rescues as spans on the owning drive's virtual
	// timeline (SetTrace). The stream follows the same single-writer
	// rule as the rest of the tracer: callers that scrub concurrently
	// with host traffic must leave tracing off or serialise externally.
	trace    *obs.Stream
	traceTid int32
}

// SetTrace attaches a span stream for maintenance work (scrub, GC,
// deep retry). tid is the thread lane within the drive's trace
// process. A nil stream (the default) keeps every hook a no-op.
func (f *FTL) SetTrace(s *obs.Stream, tid int32) {
	f.trace = s
	f.traceTid = tid
}

// vnow reads the dispatcher's virtual high-water mark (trace stamps).
func (f *FTL) vnow() time.Duration { return f.q.Dispatcher().Now() }

// New builds an FTL over the dispatcher, carving the device's blocks
// (striped across dies) into the declared partitions. Every partition
// needs at least two blocks (one of them stays free for garbage
// collection) and the total must fit the device.
func New(d *dispatch.Dispatcher, env sim.Env, specs []PartitionSpec) (*FTL, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("ftl: no partitions declared")
	}
	total := 0
	for _, s := range specs {
		if s.Blocks < 2 {
			return nil, fmt.Errorf("ftl: partition %q needs >= 2 blocks", s.Name)
		}
		total += s.Blocks
	}
	geo := d.Geometry()
	if total > geo.Dies*geo.BlocksPerDie {
		return nil, fmt.Errorf("ftl: partitions need %d blocks, device has %d",
			total, geo.Dies*geo.BlocksPerDie)
	}
	f := &FTL{q: d.NewQueue(), env: env, geo: geo}
	next := 0
	pages := geo.PagesPerBlock
	for _, s := range specs {
		p := &Partition{
			Name:      s.Name,
			Mode:      s.Mode,
			pages:     pages,
			userPages: (s.Blocks - 1) * pages, // one block of over-provisioning
		}
		for b := 0; b < s.Blocks; b++ {
			bs := &blockState{id: next, lbaOf: make([]int, pages)}
			for i := range bs.lbaOf {
				bs.lbaOf[i] = invalidPPA
			}
			p.blocks = append(p.blocks, bs)
			next++
		}
		p.mapping = make([]int, p.userPages)
		for i := range p.mapping {
			p.mapping[i] = invalidPPA
		}
		// Block 0 is the first frontier; the rest start in the free pool.
		p.active = 0
		for b := 1; b < len(p.blocks); b++ {
			p.freePool = append(p.freePool, b)
		}
		f.parts = append(f.parts, p)
	}
	return f, nil
}

// addr maps a global block id onto its (die, block) pair. Consecutive
// ids stripe round-robin across dies so every partition's blocks spread
// over the array and its traffic interleaves.
func (f *FTL) addr(global int) (die, block int) {
	return global % f.geo.Dies, global / f.geo.Dies
}

// writePhys programs one physical page under the partition's service
// level (the dispatcher resolves algorithm and capability per request).
// Called with the partition lock held.
func (f *FTL) writePhys(p *Partition, global, page int, data []byte) (*controller.WriteResult, error) {
	die, block := f.addr(global)
	// p.Mode is stable for the duration of the call (mu held, and the
	// dispatcher reads it before DoWrite returns), so its address goes
	// straight in — no per-write boxing.
	comp, err := f.q.DoWrite(context.Background(), dispatch.Request{
		Op: dispatch.OpWrite, Die: die, Block: block, Page: page,
		Data: data, Mode: &p.Mode,
	}, nil)
	if err != nil {
		return comp.Write, err
	}
	return comp.Write, nil
}

// readPhys reads one physical page through the ECC path. A non-nil out
// routes the read through the dispatcher's pooled lean path: the result
// lands in out (data in dst when it is page-sized) with no allocation.
func (f *FTL) readPhys(global, page int, dst []byte, out *controller.ReadResult) (*controller.ReadResult, error) {
	die, block := f.addr(global)
	req := dispatch.Request{Op: dispatch.OpRead, Die: die, Block: block, Page: page}
	if out != nil {
		comp, err := f.q.DoRead(context.Background(), req, dst, out)
		return comp.Read, err
	}
	comp, err := f.q.Do(context.Background(), req)
	return comp.Read, err
}

// readPhysCapped reads one physical page with an explicit recovery
// budget override (the disturb-aware retry guard's capped path). The
// retry count is passed by reference so lean callers can hand in
// long-lived scratch instead of boxing an int per read.
func (f *FTL) readPhysCapped(global, page int, retries *int, dst []byte, out *controller.ReadResult) (*controller.ReadResult, error) {
	die, block := f.addr(global)
	req := dispatch.Request{
		Op: dispatch.OpRead, Die: die, Block: block, Page: page,
		Retries: retries,
	}
	if out != nil {
		comp, err := f.q.DoRead(context.Background(), req, dst, out)
		return comp.Read, err
	}
	comp, err := f.q.Do(context.Background(), req)
	return comp.Read, err
}

// SetRetryGuard installs the disturb-aware retry policy (the
// DisturbRetryBudget/DisturbRetryCap knobs of a ScrubPolicy; a zero
// budget disables the guard).
func (f *FTL) SetRetryGuard(pol ScrubPolicy) { f.retryGuard = pol }

// disturbGuarded reports whether a host read of the block must run with
// the capped recovery budget: the block's last-observed reads-since-
// erase counter has reached the configured disturb budget.
func (f *FTL) disturbGuarded(bs *blockState) bool {
	return f.retryGuard.DisturbRetryBudget > 0 &&
		bs.lastReads >= f.retryGuard.DisturbRetryBudget
}

// deepRetryBudget is the per-request retry override of a last-chance
// relocation read: effectively unbounded, so the controller walks the
// device's entire calibrated ladder (it clamps to the ladder depth).
var deepRetryBudget = 1 << 20

// SetDeepRetry enables or disables the last-chance deep-retry
// relocation read (enabled by default). Recovery-ablation runs disable
// it so a "single-shot" pipeline loses relocated pages exactly as the
// pre-recovery code did.
func (f *FTL) SetDeepRetry(on bool) { f.noDeepRetry = !on }

// readPhysDeep is the last-chance read before a page is declared lost:
// one attempt with the recovery ladder opened to the device's full
// calibrated depth, regardless of the configured per-read budget. With
// deep retry disabled it reports the page uncorrectable immediately.
func (f *FTL) readPhysDeep(global, page int) (*controller.ReadResult, error) {
	if f.noDeepRetry {
		return nil, fmt.Errorf("ftl: deep retry disabled: %w", controller.ErrUncorrectable)
	}
	die, block := f.addr(global)
	start := time.Duration(0)
	if f.trace != nil {
		start = f.vnow()
	}
	comp, err := f.q.Do(context.Background(), dispatch.Request{
		Op: dispatch.OpRead, Die: die, Block: block, Page: page,
		Retries: &deepRetryBudget,
	})
	if f.trace != nil {
		rescued := int64(0)
		if err == nil {
			rescued = 1
		}
		f.trace.Span2(f.traceTid, "deep_retry", start, f.vnow()-start,
			"block", int64(block), "rescued", rescued)
	}
	return comp.Read, err
}

// erasePhys erases one physical block.
func (f *FTL) erasePhys(global int) error {
	die, block := f.addr(global)
	_, err := f.q.Do(context.Background(), dispatch.Request{
		Op: dispatch.OpErase, Die: die, Block: block,
	})
	return err
}

// cyclesOf returns a global block's program/erase wear.
func (f *FTL) cyclesOf(global int) (float64, error) {
	die, block := f.addr(global)
	return f.q.Dispatcher().Cycles(die, block)
}

// Partitions returns the declared services.
func (f *FTL) Partitions() []*Partition { return f.parts }

// PublishMetrics dumps per-partition FTL counters into the registry.
// labels is the pre-rendered label block scoping this FTL's series
// (e.g. `drive="3"`, or "" for a single-subsystem export); every
// series additionally carries the partition name.
func (f *FTL) PublishMetrics(reg *obs.Registry, labels string) {
	if reg == nil {
		return
	}
	for _, p := range f.parts {
		p.mu.Lock()
		series := func(name string) string {
			if labels == "" {
				return obs.Label(name, "part", p.Name)
			}
			return name + "{" + labels + `,part="` + p.Name + `"}`
		}
		reg.AddCounter(series("ftl_host_reads_total"), float64(p.HostReads))
		reg.AddCounter(series("ftl_host_writes_total"), float64(p.HostWrites))
		reg.AddCounter(series("ftl_gc_moves_total"), float64(p.GCMoves))
		reg.AddCounter(series("ftl_erases_total"), float64(p.Erases))
		reg.AddCounter(series("ftl_lost_pages_total"), float64(p.LostPages))
		reg.AddCounter(series("ftl_deep_recovered_total"), float64(p.DeepRecovered))
		reg.AddCounter(series("ftl_disturb_capped_total"), float64(p.DisturbCapped))
		reg.AddCounter(series("ftl_reloc_retries_total"), float64(p.RelocRetries))
		p.mu.Unlock()
	}
}

// Partition returns a partition by name.
func (f *FTL) Partition(name string) (*Partition, error) {
	for _, p := range f.parts {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("ftl: unknown partition %q", name)
}

// Capacity returns the exported size of a partition in logical pages.
func (p *Partition) Capacity() int { return p.userPages }

// SetMode retunes the partition's service level: subsequent writes
// (host, GC relocation and scrub refresh alike) are programmed under the
// new mode, while already-programmed pages keep the algorithm and
// capability they were written with — the reads recover both from the
// stored geometry. This is the cross-layer policy hook lifetime
// management loops use to walk a partition down the paper's trade-off
// (Nominal -> MinUBER -> MaxRead) as measured RBER climbs.
func (f *FTL) SetMode(part string, m sim.Mode) error {
	p, err := f.Partition(part)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.Mode = m
	p.mu.Unlock()
	return nil
}

// ModeOf returns the partition's current service level.
func (f *FTL) ModeOf(part string) (sim.Mode, error) {
	p, err := f.Partition(part)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.Mode, nil
}

// Write stores one logical page into the partition, superseding any
// previous version (out-of-place update), and reports the physical write
// (capability, algorithm, latency breakdown). The old copy is
// invalidated before space allocation so that an overwrite at 100%
// logical utilisation can still reclaim space — a simulator
// simplification that trades power-fail atomicity (which this model does
// not exercise) for the textbook GC invariant.
func (f *FTL) Write(part string, lpa int, data []byte) (*controller.WriteResult, error) {
	p, err := f.Partition(part)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return f.write(p, lpa, data)
}

// write is Write with the partition lock held (scrub and retirement
// relocate live data through the same path).
func (f *FTL) write(p *Partition, lpa int, data []byte) (*controller.WriteResult, error) {
	if lpa < 0 || lpa >= p.userPages {
		return nil, fmt.Errorf("ftl: lpa %d outside partition %q capacity %d", lpa, p.Name, p.userPages)
	}
	if old := p.mapping[lpa]; old >= 0 {
		ob, op := old/p.pages, old%p.pages
		p.blocks[ob].livePages--
		p.blocks[ob].lbaOf[op] = invalidPPA
	}
	p.mapping[lpa] = invalidPPA // a rewrite also clears a lost-page mark
	bs, page, err := f.allocate(p)
	if err != nil {
		return nil, err
	}
	wr, err := f.writePhys(p, bs.id, page, data)
	if err != nil {
		return nil, fmt.Errorf("ftl: program %d.%d: %w", bs.id, page, err)
	}
	p.ServiceTime += wr.Latency.Program
	p.mapping[lpa] = localPPA(p, bs) + page
	bs.lbaOf[page] = lpa
	bs.livePages++
	p.HostWrites++
	return wr, nil
}

// localPPA encodes the partition-local block index of bs.
func localPPA(p *Partition, bs *blockState) int {
	for i, b := range p.blocks {
		if b == bs {
			return i * p.pages
		}
	}
	panic("ftl: block not in partition")
}

// Read fetches one logical page through the ECC path.
func (f *FTL) Read(part string, lpa int) ([]byte, *controller.ReadResult, error) {
	return f.read(part, lpa, nil, false)
}

// ReadInto is the allocation-free host read: the page lands in dst
// (which must be at least page-sized) and the returned result points at
// partition-owned scratch — both are only valid until the partition's
// next ReadInto, so callers that keep data or result must copy them.
func (f *FTL) ReadInto(part string, lpa int, dst []byte) ([]byte, *controller.ReadResult, error) {
	return f.read(part, lpa, dst, true)
}

func (f *FTL) read(part string, lpa int, dst []byte, lean bool) ([]byte, *controller.ReadResult, error) {
	p, err := f.Partition(part)
	if err != nil {
		return nil, nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if lpa < 0 || lpa >= p.userPages {
		return nil, nil, fmt.Errorf("ftl: lpa %d outside partition %q", lpa, part)
	}
	enc := p.mapping[lpa]
	if enc == invalidPPA {
		return nil, nil, fmt.Errorf("ftl: lpa %d of %q never written", lpa, part)
	}
	if enc == lostPPA {
		return nil, nil, fmt.Errorf("ftl: lpa %d of %q lost to an unrecoverable relocation read: %w",
			lpa, part, controller.ErrUncorrectable)
	}
	blk := enc / p.pages
	bs := p.blocks[blk]
	var out *controller.ReadResult
	if lean {
		out = &p.readRes
	}
	var res *controller.ReadResult
	if f.disturbGuarded(bs) {
		// Near the disturb budget: cap the ladder (no soft multi-sense —
		// it only unlocks past the full hard walk) and queue the block
		// for relocation, which heals the disturb count outright.
		p.capRetries = f.retryGuard.DisturbRetryCap
		res, err = f.readPhysCapped(bs.id, enc%p.pages, &p.capRetries, dst, out)
		p.DisturbCapped++
		if p.scrubMarks == nil {
			p.scrubMarks = make(map[int]bool)
		}
		p.scrubMarks[blk] = true
	} else {
		res, err = f.readPhys(bs.id, enc%p.pages, dst, out)
	}
	if res != nil {
		bs.lastReads = res.BlockReads
	}
	if err != nil {
		return nil, res, err
	}
	p.HostReads++
	p.ServiceTime += res.Latency.Total()
	return res.Data, res, nil
}

// BlockOf returns the partition-local index of the physical block
// currently holding a live logical page (lifetime harnesses use it to
// check that scrub moved what it claimed to move).
func (f *FTL) BlockOf(part string, lpa int) (int, error) {
	p, err := f.Partition(part)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if lpa < 0 || lpa >= p.userPages || p.mapping[lpa] < 0 {
		return 0, fmt.Errorf("ftl: lpa %d not live in %q", lpa, part)
	}
	return p.mapping[lpa] / p.pages, nil
}

// Trim drops a logical page's mapping, freeing its physical copy for GC.
func (f *FTL) Trim(part string, lpa int) error {
	p, err := f.Partition(part)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if lpa < 0 || lpa >= p.userPages {
		return fmt.Errorf("ftl: lpa %d outside partition %q", lpa, part)
	}
	if enc := p.mapping[lpa]; enc >= 0 {
		bs := p.blocks[enc/p.pages]
		bs.livePages--
		bs.lbaOf[enc%p.pages] = invalidPPA
		p.mapping[lpa] = invalidPPA
		p.Trims++
	} else if enc == lostPPA {
		p.mapping[lpa] = invalidPPA
		p.Trims++
	}
	return nil
}

// allocate returns the next free physical page of the partition's write
// frontier. One erased block is always held in reserve as the garbage
// collector's relocation destination (invariant: the free pool never
// empties outside collect); host writes may consume pool blocks only
// down to that reserve.
func (f *FTL) allocate(p *Partition) (*blockState, int, error) {
	bs := p.blocks[p.active]
	if bs.writePtr < p.pages {
		page := bs.writePtr
		bs.writePtr++
		return bs, page, nil
	}
	// Frontier sealed. Take a pool block if the reserve stays intact.
	if len(p.freePool) >= 2 {
		p.active = p.freePool[0]
		p.freePool = p.freePool[1:]
		nb := p.blocks[p.active]
		if nb.writePtr != 0 {
			return nil, 0, fmt.Errorf("ftl: fresh frontier block %d not empty", nb.id)
		}
		nb.writePtr = 1
		return nb, 0, nil
	}
	// Otherwise reclaim: collect moves the victim's live pages into the
	// reserved block, which becomes the new (partially filled) frontier.
	if err := f.collect(p); err != nil {
		return nil, 0, err
	}
	nb := p.blocks[p.active]
	if nb.writePtr >= p.pages {
		return nil, 0, fmt.Errorf("ftl: partition %q out of space (capacity %d pages)", p.Name, p.userPages)
	}
	page := nb.writePtr
	nb.writePtr++
	return nb, page, nil
}

// collect performs one garbage-collection round: the sealed block with
// the fewest live pages (lowest wear as tie-break, levelling block usage)
// is relocated into the reserved free block, which becomes the new write
// frontier; the victim is erased and joins the pool.
func (f *FTL) collect(p *Partition) error {
	if len(p.freePool) == 0 {
		return fmt.Errorf("ftl: partition %q lost its GC reserve (internal invariant)", p.Name)
	}
	victim := -1
	for i, bs := range p.blocks {
		if bs.writePtr < p.pages || bs.retired {
			continue // only sealed (fully written), in-rotation blocks
		}
		if victim == -1 || f.betterVictim(p, i, victim) {
			victim = i
		}
	}
	if victim == -1 {
		return fmt.Errorf("ftl: partition %q has no sealed block to collect", p.Name)
	}
	if f.trace != nil {
		gcStart := f.vnow()
		movedBefore := p.GCMoves
		defer func() {
			f.trace.Span2(f.traceTid, "gc", gcStart, f.vnow()-gcStart,
				"victim", int64(p.blocks[victim].id), "moved", int64(p.GCMoves-movedBefore))
		}()
	}
	vb := p.blocks[victim]
	if vb.livePages == p.pages {
		return fmt.Errorf("ftl: partition %q full of live data; over-provisioning exhausted", p.Name)
	}
	destIdx := p.freePool[0]
	p.freePool = p.freePool[1:]
	dest := p.blocks[destIdx]
	if dest.writePtr != 0 {
		return fmt.Errorf("ftl: GC destination block %d not erased", dest.id)
	}
	for page, lpa := range vb.lbaOf {
		if lpa == invalidPPA {
			continue
		}
		res, err := f.readPhys(vb.id, page, nil, nil)
		if res != nil {
			p.RelocRetries += res.Retries
			vb.lastReads = res.BlockReads
		}
		if err != nil {
			if !errors.Is(err, controller.ErrUncorrectable) {
				return fmt.Errorf("ftl: GC read %d.%d: %w", vb.id, page, err)
			}
			// Last chance before the victim is erased: one deep-retry
			// read at the device's full recovery ladder.
			deep, derr := f.readPhysDeep(vb.id, page)
			if deep != nil {
				p.RelocRetries += deep.Retries
			}
			switch {
			case derr == nil:
				p.DeepRecovered++
				res = deep
			case errors.Is(derr, controller.ErrUncorrectable):
				// The only copy really is unreadable: track the logical
				// page as a media error so reads fail honestly until the
				// host rewrites it.
				vb.livePages--
				vb.lbaOf[page] = invalidPPA
				p.mapping[lpa] = lostPPA
				p.LostPages++
				continue
			default:
				// Infrastructure failure (closed queue, bad address):
				// not media loss — propagate, never mark the page lost.
				return fmt.Errorf("ftl: GC deep-retry read %d.%d: %w", vb.id, page, derr)
			}
		}
		if _, err := f.writePhys(p, dest.id, dest.writePtr, res.Data); err != nil {
			return fmt.Errorf("ftl: GC program: %w", err)
		}
		vb.livePages--
		vb.lbaOf[page] = invalidPPA
		p.mapping[lpa] = destIdx*p.pages + dest.writePtr
		dest.lbaOf[dest.writePtr] = lpa
		dest.livePages++
		dest.writePtr++
		p.GCMoves++
	}
	if err := f.erasePhys(vb.id); err != nil {
		return err
	}
	vb.writePtr = 0
	vb.livePages = 0
	vb.lastReads = 0 // erase heals the disturb counter
	for i := range vb.lbaOf {
		vb.lbaOf[i] = invalidPPA
	}
	p.Erases++
	p.freePool = append(p.freePool, victim)
	p.active = destIdx
	return nil
}

// betterVictim ranks GC candidates: fewer live pages first, then lower
// wear (erase count) to level block usage.
func (f *FTL) betterVictim(p *Partition, a, b int) bool {
	ba, bb := p.blocks[a], p.blocks[b]
	if ba.livePages != bb.livePages {
		return ba.livePages < bb.livePages
	}
	ca, _ := f.cyclesOf(ba.id)
	cb, _ := f.cyclesOf(bb.id)
	return ca < cb
}

// WriteAmplification returns total device writes / host writes for the
// partition (1.0 when GC never ran).
func (p *Partition) WriteAmplification() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.HostWrites == 0 {
		return 0
	}
	return float64(p.HostWrites+p.GCMoves) / float64(p.HostWrites)
}

// WearSpread returns the min and max erase counts across the partition's
// blocks — the wear-leveling quality metric.
func (f *FTL) WearSpread(part string) (min, max float64, err error) {
	p, err := f.Partition(part)
	if err != nil {
		return 0, 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, bs := range p.blocks {
		c, err := f.cyclesOf(bs.id)
		if err != nil {
			return 0, 0, err
		}
		if i == 0 || c < min {
			min = c
		}
		if i == 0 || c > max {
			max = c
		}
	}
	return min, max, nil
}

// ErrNoSpareBlocks reports a retirement that would leave the partition
// unable to hold its live data plus the frontier and GC reserve.
var ErrNoSpareBlocks = fmt.Errorf("ftl: retirement would exhaust spare blocks")

// errRetireSkip reports a retirement refused for a per-block reason —
// the block is the active write frontier, or pulling it out of the free
// pool would empty the GC reserve — while a different candidate may
// still retire.
var errRetireSkip = fmt.Errorf("ftl: block cannot retire right now")

// relocateLive moves every live page of bs to fresh locations through
// the normal write path, with the partition lock held — the shared core
// of scrub refresh and block retirement. The live set is snapshotted
// first (write mutates lbaOf, and an interleaved GC round may relocate
// parts of the block on its own; entries that moved underneath us are
// skipped). A page whose read fails uncorrectably is left in place with
// its stale mapping and counted, never invented from thin air.
func (f *FTL) relocateLive(p *Partition, bs *blockState) (moved, uncorrectable int, err error) {
	type liveEntry struct{ page, lpa int }
	var live []liveEntry
	for page, lpa := range bs.lbaOf {
		if lpa != invalidPPA {
			live = append(live, liveEntry{page, lpa})
		}
	}
	for _, le := range live {
		if bs.lbaOf[le.page] != le.lpa {
			continue // already moved by GC during this pass
		}
		res, err := f.readPhys(bs.id, le.page, nil, nil)
		if res != nil {
			p.RelocRetries += res.Retries
			bs.lastReads = res.BlockReads
		}
		if err != nil {
			if !errors.Is(err, controller.ErrUncorrectable) {
				return moved, uncorrectable, fmt.Errorf("ftl: relocation read %d.%d: %w", bs.id, le.page, err)
			}
			// A page the normal ladder lost gets one deep-retry
			// recovery attempt before scrub/retirement gives up on it.
			deep, derr := f.readPhysDeep(bs.id, le.page)
			if deep != nil {
				p.RelocRetries += deep.Retries
			}
			switch {
			case derr == nil:
				p.DeepRecovered++
				res = deep
			case errors.Is(derr, controller.ErrUncorrectable):
				uncorrectable++
				continue // data lost; leave the stale mapping
			default:
				return moved, uncorrectable, fmt.Errorf("ftl: deep-retry relocation read %d.%d: %w", bs.id, le.page, derr)
			}
		}
		// Rewrite through the normal host path: allocation, mode
		// configuration and mapping update all apply.
		if _, err := f.write(p, le.lpa, res.Data); err != nil {
			return moved, uncorrectable, fmt.Errorf("ftl: relocation rewrite lpa %d: %w", le.lpa, err)
		}
		p.HostWrites-- // relocation traffic is not host traffic
		p.GCMoves++
		moved++
	}
	return moved, uncorrectable, nil
}

// RetireWorn takes every in-rotation block whose program/erase count is
// at or above the ceiling out of service, oldest-wear first, relocating
// live data through the normal write path. A candidate that happens to
// be the write frontier is skipped (a later pass catches it); retirement
// stops entirely — without error — once removing another block would
// violate the spare-block invariant, so a uniform-wear partition sheds
// blocks gradually instead of collapsing. It returns the number of
// blocks retired by this call.
func (f *FTL) RetireWorn(part string, ceiling float64) (int, error) {
	if ceiling <= 0 {
		return 0, fmt.Errorf("ftl: non-positive wear ceiling %g", ceiling)
	}
	p, err := f.Partition(part)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// Rank candidates by wear so the most-cycled blocks go first.
	type cand struct {
		idx    int
		cycles float64
	}
	var worn []cand
	for i, bs := range p.blocks {
		if bs.retired {
			continue
		}
		c, err := f.cyclesOf(bs.id)
		if err != nil {
			return 0, err
		}
		if c >= ceiling {
			worn = append(worn, cand{i, c})
		}
	}
	sort.Slice(worn, func(a, b int) bool {
		if worn[a].cycles != worn[b].cycles {
			return worn[a].cycles > worn[b].cycles
		}
		return worn[a].idx < worn[b].idx
	})
	retired := 0
	for _, c := range worn {
		switch err := f.retire(p, c.idx); {
		case err == nil:
			retired++
		case errors.Is(err, errRetireSkip):
			continue // per-block refusal; a cooler candidate may retire
		case errors.Is(err, ErrNoSpareBlocks):
			// The spare-block accounting is independent of the candidate:
			// every remaining block would fail the same check.
			return retired, nil
		default:
			return retired, err
		}
	}
	return retired, nil
}

// retire removes one block from rotation with the partition lock held.
func (f *FTL) retire(p *Partition, blk int) error {
	if blk < 0 || blk >= len(p.blocks) {
		return fmt.Errorf("ftl: block %d outside partition %q", blk, p.Name)
	}
	bs := p.blocks[blk]
	if bs.retired {
		return nil
	}
	if blk == p.active {
		// Never retire the write frontier mid-fill; the caller's next
		// pass catches the block once the frontier has moved on.
		return errRetireSkip
	}
	// The partition must stay functional afterwards: enough in-rotation
	// blocks for the live data, the frontier and the GC reserve.
	usable, live := 0, 0
	for _, b := range p.blocks {
		if !b.retired {
			usable++
		}
		live += b.livePages
	}
	if usable-1 < 3 || live > (usable-3)*p.pages {
		return ErrNoSpareBlocks
	}
	// Relocate live data off the victim. Unreadable pages keep their
	// stale mapping pointing into the retired block (which is never
	// erased), so later reads surface the loss honestly.
	if _, _, err := f.relocateLive(p, bs); err != nil {
		return fmt.Errorf("ftl: retire block %d: %w", bs.id, err)
	}
	// An interleaved GC round may have erased the victim and promoted it
	// to the write frontier; retirement must then wait for a later pass.
	if blk == p.active {
		return errRetireSkip
	}
	// Drop the block from the free pool if it was parked there.
	for i, fp := range p.freePool {
		if fp == blk {
			if len(p.freePool) < 2 {
				return errRetireSkip // sole reserve block; sealed candidates may still go
			}
			p.freePool = append(p.freePool[:i], p.freePool[i+1:]...)
			break
		}
	}
	bs.retired = true
	p.RetiredBlocks++
	delete(p.scrubMarks, blk)
	return nil
}

// Retired returns the number of blocks the partition has taken out of
// rotation.
func (p *Partition) Retired() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.RetiredBlocks
}
