package xlnand

import (
	"xlnand/internal/dispatch"
)

// Queue is an asynchronous submission/completion handle onto the
// sub-system's multi-die dispatcher. Queues are safe for concurrent use
// from any number of goroutines; any number of queues may target one
// sub-system.
type Queue = dispatch.Queue

// Request is one I/O operation: an op code, a (die, block, page)
// address, the write payload, and optional per-request overrides of the
// service level (Mode) and ECC capability (T).
type Request = dispatch.Request

// Completion reports one request's outcome: payload, ECC detail, the
// modelled Start/Finish stamps on the sub-system timeline, and a typed
// error (*OpError) on failure.
type Completion = dispatch.Completion

// OpCode selects a request's operation.
type OpCode = dispatch.Op

// Request operations.
const (
	OpRead  = dispatch.OpRead
	OpWrite = dispatch.OpWrite
	OpErase = dispatch.OpErase
)

// OpError is the typed error carried by failed completions: operation,
// address, and a wrapped cause (ErrUncorrectable, ErrBadAddress,
// ErrClosed, a context error or a device error).
type OpError = dispatch.OpError

// Typed error sentinels for errors.Is.
var (
	// ErrUncorrectable reports a decode failure: the error pattern
	// exceeded the page's correction capability.
	ErrUncorrectable = dispatch.ErrUncorrectable
	// ErrBadAddress reports a die/block/page outside the geometry.
	ErrBadAddress = dispatch.ErrBadAddress
	// ErrClosed reports a submission after Close.
	ErrClosed = dispatch.ErrClosed
)

// Geometry describes an open sub-system's shape.
type Geometry = dispatch.Geometry

// NewQueue returns a submission handle onto the sub-system.
func (s *Subsystem) NewQueue() *Queue { return s.disp.NewQueue() }

// Geometry reports the sub-system's shape.
func (s *Subsystem) Geometry() Geometry { return s.disp.Geometry() }

// ReadRequest builds a read of one page.
func ReadRequest(die, block, page int) Request {
	return Request{Op: OpRead, Die: die, Block: block, Page: page}
}

// WriteRequest builds a write of one page (data must be PageSize bytes).
func WriteRequest(die, block, page int, data []byte) Request {
	return Request{Op: OpWrite, Die: die, Block: block, Page: page, Data: data}
}

// EraseRequest builds a block erase.
func EraseRequest(die, block int) Request {
	return Request{Op: OpErase, Die: die, Block: block}
}
