package xlnand

import (
	"xlnand/internal/sim"
)

// OperatingPoint is one evaluated cross-layer configuration: algorithm,
// capability, wear, and the resulting UBER, latencies, throughputs and
// power (paper §6.3's metric set).
type OperatingPoint = sim.OperatingPoint

// Env exposes the analytic model environment for metric evaluation
// without opening a full sub-system.
type Env = sim.Env

// DefaultEnv returns the paper's model configuration.
func DefaultEnv() Env { return sim.DefaultEnv() }

// Evaluate computes the metrics of an explicit (algorithm, t, cycles)
// configuration under the sub-system's environment.
func (s *Subsystem) Evaluate(alg Algorithm, t int, cycles float64) (OperatingPoint, error) {
	return s.env.Evaluate(alg, t, cycles)
}

// EvaluateMode computes the metrics of a service level at the given wear.
func (s *Subsystem) EvaluateMode(m Mode, cycles float64) (OperatingPoint, error) {
	return s.env.EvaluateMode(m, cycles)
}

// RequiredT returns the minimum ECC capability holding the sub-system's
// UBER target for the given algorithm and wear — the t-schedule of paper
// §6.2.
func (s *Subsystem) RequiredT(alg Algorithm, cycles float64) int {
	return s.env.RequiredT(alg, cycles)
}

// ExploreOperatingPoints evaluates the (algorithm × capability) grid at
// one wear level; tStride thins the capability axis.
func (s *Subsystem) ExploreOperatingPoints(cycles float64, tStride int) ([]OperatingPoint, error) {
	return s.env.ExplorePoints(cycles, tStride)
}

// ParetoFront filters operating points to the non-dominated set over
// (UBER, read throughput, write throughput, power).
func ParetoFront(points []OperatingPoint) []OperatingPoint {
	return sim.ParetoFront(points)
}

// MeetsUBER filters operating points to those at/below the target.
func MeetsUBER(points []OperatingPoint, target float64) []OperatingPoint {
	return sim.MeetsUBER(points, target)
}

// LifetimePoint pairs a wear level with the metrics of every mode.
type LifetimePoint struct {
	Cycles  float64
	Nominal OperatingPoint
	MinUBER OperatingPoint
	MaxRead OperatingPoint
}

// LifetimeSweep evaluates the three service levels across a wear grid —
// the computation behind Figs. 8-11.
func (s *Subsystem) LifetimeSweep(cycleGrid []float64) ([]LifetimePoint, error) {
	out := make([]LifetimePoint, 0, len(cycleGrid))
	for _, n := range cycleGrid {
		nom, err := s.env.EvaluateMode(sim.ModeNominal, n)
		if err != nil {
			return nil, err
		}
		minU, err := s.env.EvaluateMode(sim.ModeMinUBER, n)
		if err != nil {
			return nil, err
		}
		maxR, err := s.env.EvaluateMode(sim.ModeMaxRead, n)
		if err != nil {
			return nil, err
		}
		out = append(out, LifetimePoint{Cycles: n, Nominal: nom, MinUBER: minU, MaxRead: maxR})
	}
	return out, nil
}
