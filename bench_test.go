package xlnand

// The benchmark harness regenerates every figure of the paper's
// evaluation (go test -bench=Fig -benchmem) and reports the figure's
// headline quantity as a custom benchmark metric, so that the shape
// comparison recorded in EXPERIMENTS.md is reproducible in one command.
// Micro-benchmarks of the codec and device hot paths follow.

import (
	"math"
	"testing"

	"xlnand/internal/bch"
	"xlnand/internal/nand"
	"xlnand/internal/stats"
)

// runFigure regenerates a figure once per iteration (the cost benched is
// the full experiment sweep) and returns the last result for metric
// extraction.
func runFigure(b *testing.B, id string) Figure {
	b.Helper()
	var fig Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = RunExperiment(id, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	return fig
}

func lastY(fig Figure, series string) float64 {
	for _, s := range fig.Series {
		if s.Name == series && len(s.Y) > 0 {
			return s.Y[len(s.Y)-1]
		}
	}
	return math.NaN()
}

func BenchmarkFig04ISPPTransfer(b *testing.B) {
	fig := runFigure(b, "fig04")
	// Headline: RMS fit error between compact model and reference.
	var rms float64
	simS, refS := fig.Series[0], fig.Series[1]
	for i := range simS.Y {
		d := simS.Y[i] - refS.Y[i]
		rms += d * d
	}
	b.ReportMetric(math.Sqrt(rms/float64(len(simS.Y))), "rms-fit-V")
}

func BenchmarkFig05RBER(b *testing.B) {
	fig := runFigure(b, "fig05")
	sv := lastY(fig, "RBER ISPP-SV")
	dv := lastY(fig, "RBER ISPP-DV")
	b.ReportMetric(sv, "sv-eol-rber")
	b.ReportMetric(sv/dv, "dv-gain-x")
}

func BenchmarkFig06Power(b *testing.B) {
	fig := runFigure(b, "fig06")
	sv := lastY(fig, "ISPP-SV L2 Pattern")
	dv := lastY(fig, "ISPP-DV L2 Pattern")
	b.ReportMetric(sv, "sv-l2-watts")
	b.ReportMetric((dv-sv)*1e3, "dv-delta-mW")
}

func BenchmarkFig07UBERvsRBER(b *testing.B) {
	fig := runFigure(b, "fig07")
	b.ReportMetric(float64(len(fig.Series)), "series")
}

func BenchmarkFig07DV(b *testing.B) {
	fig := runFigure(b, "fig07dv")
	b.ReportMetric(float64(len(fig.Series)), "series")
}

func BenchmarkFig08Latency(b *testing.B) {
	fig := runFigure(b, "fig08")
	b.ReportMetric(lastY(fig, "ISPP-SV ECC Decoding"), "sv-eol-decode-us")
	b.ReportMetric(lastY(fig, "ISPP-DV ECC Decoding"), "dv-eol-decode-us")
	b.ReportMetric(lastY(fig, "ISPP-SV ECC Encoding"), "encode-us")
}

func BenchmarkFig09WriteLoss(b *testing.B) {
	fig := runFigure(b, "fig09")
	s := fig.Series[0]
	b.ReportMetric(s.Y[0], "fresh-loss-pct")
	b.ReportMetric(s.Y[len(s.Y)-1], "eol-loss-pct")
}

func BenchmarkFig10UBER(b *testing.B) {
	fig := runFigure(b, "fig10")
	nom := lastY(fig, "Nominal")
	mod := lastY(fig, "Physical Layer Modification")
	b.ReportMetric(math.Log10(nom)-math.Log10(mod), "eol-boost-decades")
}

func BenchmarkFig11ReadGain(b *testing.B) {
	fig := runFigure(b, "fig11")
	s := fig.Series[0]
	b.ReportMetric(s.Y[len(s.Y)-1], "eol-gain-pct")
	b.ReportMetric(s.Y[0], "fresh-gain-pct")
}

func BenchmarkAblationBlockSize(b *testing.B) {
	fig := runFigure(b, "abl-blocksize")
	b.ReportMetric(lastY(fig, "512 B blocks (Chen et al. [28])"), "small-block-overhead-pct")
	b.ReportMetric(lastY(fig, "4 KB page (this work)"), "page-overhead-pct")
}

func BenchmarkAblationISPPKnobs(b *testing.B) {
	fig := runFigure(b, "abl-ispp")
	b.ReportMetric(lastY(fig, "DV sigma [mV]"), "dv-sigma-mV")
}

func BenchmarkAblationParallelism(b *testing.B) {
	fig := runFigure(b, "abl-parallelism")
	b.ReportMetric(float64(len(fig.Series)), "p-configs")
}

func BenchmarkAblationApproximation(b *testing.B) {
	fig := runFigure(b, "abl-approx")
	b.ReportMetric(lastY(fig, "t = 65"), "tail-ratio-t65")
}

// --- codec micro-benchmarks (the architecture-layer hot paths) ---

func pageCodec(b *testing.B) *Codec {
	b.Helper()
	codec, err := NewPageCodec()
	if err != nil {
		b.Fatal(err)
	}
	return codec
}

func benchEncode(b *testing.B, t int) {
	codec := pageCodec(b)
	if err := codec.Warm(t); err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, codec.K/8)
	r := stats.NewRNG(1)
	for i := range msg {
		msg[i] = byte(r.Intn(256))
	}
	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Encode(t, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodePageT3(b *testing.B)  { benchEncode(b, 3) }
func BenchmarkEncodePageT30(b *testing.B) { benchEncode(b, 30) }
func BenchmarkEncodePageT65(b *testing.B) { benchEncode(b, 65) }

func benchDecode(b *testing.B, t, nerr int) {
	codec := pageCodec(b)
	if err := codec.Warm(t); err != nil {
		b.Fatal(err)
	}
	r := stats.NewRNG(2)
	msg := make([]byte, codec.K/8)
	for i := range msg {
		msg[i] = byte(r.Intn(256))
	}
	clean, err := codec.EncodeCodeword(t, msg)
	if err != nil {
		b.Fatal(err)
	}
	cw := make([]byte, len(clean))
	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copy(cw, clean)
		for _, pos := range r.SampleK(len(cw)*8, nerr) {
			cw[pos/8] ^= 1 << uint(7-pos%8)
		}
		b.StartTimer()
		if _, err := codec.Decode(t, cw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePageT3Clean(b *testing.B)      { benchDecode(b, 3, 0) }
func BenchmarkDecodePageT30With10Err(b *testing.B) { benchDecode(b, 30, 10) }
func BenchmarkDecodePageT65With65Err(b *testing.B) { benchDecode(b, 65, 65) }

func BenchmarkGFMul(b *testing.B) {
	f := pageCodec(b).Field()
	var acc uint32 = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = f.Mul(acc|1, uint32(i)&0xffff|1)
	}
	_ = acc
}

func BenchmarkUBERSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bch.RequiredT(16, 32768, 1e-4, 1e-11, 65); err != nil {
			b.Fatal(err)
		}
	}
}

// --- device micro-benchmarks (the physical-layer hot paths) ---

func BenchmarkPageSimProgramSV(b *testing.B) {
	benchProgram(b, nand.ISPPSV)
}

func BenchmarkPageSimProgramDV(b *testing.B) {
	benchProgram(b, nand.ISPPDV)
}

func benchProgram(b *testing.B, alg nand.Algorithm) {
	cal := nand.DefaultCalibration()
	rng := stats.NewRNG(3)
	sim := nand.NewPageSim(cal, cal.CellsPerPage, rng)
	aged := cal.Age(1e4)
	targets := make([]nand.Level, cal.CellsPerPage)
	for i := range targets {
		targets[i] = nand.Level(rng.Intn(4))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Erase(aged)
		if _, err := sim.Program(targets, alg, aged); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubsystemWriteRead(b *testing.B) {
	sys, err := Open(Options{Blocks: 4, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, sys.PageSize())
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		block := i % sys.Blocks()
		page := (i / sys.Blocks()) % sys.PagesPerBlock()
		if page == 0 && i >= sys.Blocks() {
			b.StopTimer()
			if err := sys.EraseBlock(block); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if _, err := sys.WritePage(block, page, data); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.ReadPage(block, page); err != nil {
			b.Fatal(err)
		}
	}
}
