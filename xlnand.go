// Package xlnand is a simulation library for cross-layer
// reliability/performance trade-offs in MLC NAND flash memories,
// reproducing Zambelli et al., "A Cross-Layer Approach for New
// Reliability-Performance Trade-Offs in MLC NAND Flash Memories"
// (DATE 2012).
//
// The library models the full memory sub-system: a 2-bit/cell NAND device
// with runtime-selectable program algorithm (standard ISPP-SV vs
// double-verify ISPP-DV), an adaptive BCH codec protecting 4 KB pages
// with correction capability t programmable in [3, 65] over GF(2^16), the
// high-voltage charge-pump power model, and a memory controller with a
// self-adaptive reliability manager. On top of these it exposes the
// paper's three cross-layer service levels:
//
//   - ModeNominal — ISPP-SV with the ECC sized for the SV error rate
//     (the conventional baseline);
//   - ModeMinUBER — switch the physical layer to ISPP-DV while keeping
//     the nominal ECC: orders-of-magnitude lower UBER at unchanged read
//     throughput (paper §6.3.1);
//   - ModeMaxRead — ISPP-DV with the ECC relaxed to just meet the UBER
//     target: up to ≈30% higher read throughput at end of life at
//     unchanged UBER (paper §6.3.2).
//
// Both cross-layer modes pay ≈40-48% write throughput (paper §6.3.3).
//
// Open a simulated sub-system, select a mode, and use WritePage/ReadPage;
// or evaluate operating points analytically with Evaluate/EvaluateMode.
// The experiment harness regenerating every figure of the paper is
// exposed through RunExperiment and the cmd/flashsim binary.
package xlnand

import (
	"fmt"

	"xlnand/internal/bch"
	"xlnand/internal/controller"
	"xlnand/internal/nand"
	"xlnand/internal/sim"
)

// Algorithm selects the NAND program algorithm (the physical-layer knob).
type Algorithm = nand.Algorithm

// Program algorithm values.
const (
	ISPPSV = nand.ISPPSV // standard single-verify ISPP
	ISPPDV = nand.ISPPDV // double-verify ISPP (tighter distributions)
)

// Mode names the paper's cross-layer service levels.
type Mode = sim.Mode

// Service levels (§6.3).
const (
	ModeNominal = sim.ModeNominal
	ModeMinUBER = sim.ModeMinUBER
	ModeMaxRead = sim.ModeMaxRead
)

// ErrUncorrectable is returned by ReadPage when the error pattern exceeds
// the configured correction capability.
var ErrUncorrectable = controller.ErrUncorrectable

// Options configures Open.
type Options struct {
	// Blocks is the number of simulated flash blocks (default 8).
	Blocks int
	// Seed drives all simulation randomness (default 1).
	Seed uint64
	// TargetUBERExp sets the reliability target as 10^-exp (default 11,
	// the paper's 1e-11).
	TargetUBERExp uint32
	// ManualECC disables the reliability manager; use SetCapability to
	// pick t explicitly. The default (false) leaves the manager in
	// charge.
	ManualECC bool
}

func (o Options) withDefaults() Options {
	if o.Blocks == 0 {
		o.Blocks = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TargetUBERExp == 0 {
		o.TargetUBERExp = 11
	}
	return o
}

// Subsystem is an open simulated NAND memory sub-system: device,
// controller, adaptive codec and reliability manager.
type Subsystem struct {
	ctrl *controller.Controller
	env  sim.Env
	mode Mode
}

// Open builds a simulated sub-system. The zero Options value gives the
// paper's baseline configuration.
func Open(o Options) (*Subsystem, error) {
	o = o.withDefaults()
	if o.Blocks < 0 {
		return nil, fmt.Errorf("xlnand: negative block count %d", o.Blocks)
	}
	env := sim.DefaultEnv()
	dev := nand.NewDevice(env.Cal, o.Blocks, o.Seed)
	codec, err := bch.NewCodec(env.M, env.K, env.TMin, env.TMax)
	if err != nil {
		return nil, err
	}
	cfg := controller.DefaultConfig()
	cfg.TargetUBERExp = o.TargetUBERExp
	cfg.Adaptive = !o.ManualECC
	ctrl, err := controller.New(dev, codec, cfg)
	if err != nil {
		return nil, err
	}
	target := 1.0
	for i := uint32(0); i < o.TargetUBERExp; i++ {
		target /= 10
	}
	env.TargetUBER = target
	return &Subsystem{ctrl: ctrl, env: env, mode: ModeNominal}, nil
}

// PageSize returns the user payload per page in bytes (4096).
func (s *Subsystem) PageSize() int { return s.env.Cal.PageDataBytes }

// Blocks returns the number of flash blocks.
func (s *Subsystem) Blocks() int { return s.ctrl.Device().Blocks() }

// PagesPerBlock returns the pages per block.
func (s *Subsystem) PagesPerBlock() int { return s.ctrl.Device().PagesPerBlock() }

// SelectMode switches the sub-system to one of the paper's service
// levels, reconfiguring both layers (program algorithm register and ECC
// policy) at runtime.
func (s *Subsystem) SelectMode(m Mode) error {
	switch m {
	case ModeNominal:
		s.ctrl.SetAlgorithm(nand.ISPPSV)
		s.ctrl.SetAdaptive(true)
	case ModeMinUBER:
		// DV physical layer, ECC kept at the nominal (SV-sized)
		// schedule: the manager would relax t for DV's better RBER, so
		// min-UBER pins the SV schedule through the manual register.
		s.ctrl.SetAlgorithm(nand.ISPPDV)
		s.ctrl.SetAdaptive(true)
	case ModeMaxRead:
		s.ctrl.SetAlgorithm(nand.ISPPDV)
		s.ctrl.SetAdaptive(true)
	default:
		return fmt.Errorf("xlnand: unknown mode %d", int(m))
	}
	s.mode = m
	return nil
}

// Mode returns the currently selected service level.
func (s *Subsystem) Mode() Mode { return s.mode }

// SetAlgorithm drives the program-algorithm register directly (expert
// path; SelectMode covers the paper's use cases).
func (s *Subsystem) SetAlgorithm(alg Algorithm) { s.ctrl.SetAlgorithm(alg) }

// SetCapability pins the ECC correction capability, disabling the
// reliability manager until SelectMode or SetAdaptive re-enables it.
func (s *Subsystem) SetCapability(t int) { s.ctrl.SetCapability(t) }

// SetAdaptive toggles the reliability manager.
func (s *Subsystem) SetAdaptive(on bool) { s.ctrl.SetAdaptive(on) }

// resolveT returns the capability the controller will use for a write to
// the given block under the current mode (min-UBER pins the SV schedule).
func (s *Subsystem) prepare(blockIdx int) {
	if s.mode != ModeMinUBER {
		return
	}
	cycles, err := s.ctrl.Device().Cycles(blockIdx)
	if err != nil {
		return
	}
	// min-UBER: capability follows the *SV* requirement even though the
	// physical layer runs DV.
	s.ctrl.SetCapability(s.env.RequiredT(nand.ISPPSV, cycles))
}

// WriteResult reports a page write.
type WriteResult = controller.WriteResult

// ReadResult reports a page read.
type ReadResult = controller.ReadResult

// WritePage encodes and programs one page (data must be PageSize bytes).
func (s *Subsystem) WritePage(block, page int, data []byte) (WriteResult, error) {
	s.prepare(block)
	res, err := s.ctrl.WritePage(block, page, data)
	if s.mode == ModeMinUBER {
		s.ctrl.SetAdaptive(true) // restore manager for other paths
	}
	return res, err
}

// ReadPage reads, transfers and decodes one page.
func (s *Subsystem) ReadPage(block, page int) (ReadResult, error) {
	return s.ctrl.ReadPage(block, page)
}

// EraseBlock erases a block (incrementing its wear).
func (s *Subsystem) EraseBlock(block int) error { return s.ctrl.EraseBlock(block) }

// AgeBlock fast-forwards a block's program/erase wear to the given cycle
// count, so lifetime behaviour can be studied without replaying millions
// of operations.
func (s *Subsystem) AgeBlock(block int, cycles float64) error {
	return s.ctrl.Device().SetCycles(block, cycles)
}

// BlockCycles returns a block's wear.
func (s *Subsystem) BlockCycles(block int) (float64, error) {
	return s.ctrl.Device().Cycles(block)
}

// Uncorrectables returns the number of decode failures observed since
// Open.
func (s *Subsystem) Uncorrectables() int {
	return s.ctrl.Manager().Uncorrectables()
}

// Controller exposes the underlying controller for advanced use
// (register-level access, reliability-manager inspection).
func (s *Subsystem) Controller() *controller.Controller { return s.ctrl }
