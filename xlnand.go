// Package xlnand is a simulation library for cross-layer
// reliability/performance trade-offs in MLC NAND flash memories,
// reproducing Zambelli et al., "A Cross-Layer Approach for New
// Reliability-Performance Trade-Offs in MLC NAND Flash Memories"
// (DATE 2012), grown into an asynchronous, batched, multi-die storage
// sub-system.
//
// The library models the full memory sub-system: 2-bit/cell NAND dies
// with runtime-selectable program algorithm (standard ISPP-SV vs
// double-verify ISPP-DV), an adaptive BCH codec protecting 4 KB pages
// with correction capability t programmable in [3, 65] over GF(2^16), the
// high-voltage charge-pump power model, and a memory controller with a
// self-adaptive reliability manager. On top of these it exposes the
// paper's three cross-layer service levels:
//
//   - ModeNominal — ISPP-SV with the ECC sized for the SV error rate
//     (the conventional baseline);
//   - ModeMinUBER — switch the physical layer to ISPP-DV while keeping
//     the nominal ECC: orders-of-magnitude lower UBER at unchanged read
//     throughput (paper §6.3.1);
//   - ModeMaxRead — ISPP-DV with the ECC relaxed to just meet the UBER
//     target: up to ≈30% higher read throughput at end of life at
//     unchanged UBER (paper §6.3.2).
//
// Both cross-layer modes pay ≈40-48% write throughput (paper §6.3.3).
//
// # The queue API
//
// The primary I/O surface is asynchronous and batched, in the
// submission/completion-queue style of modern flash stacks. Open a
// sub-system with functional options, create a Queue, and submit
// batches of requests; the dispatcher fans them out across the dies
// with one worker per die while the shared flash bus and BCH codec
// serialise on a modelled timeline, so multi-die interleaving follows
// the same pipeline model the analytic ScaleDies evaluation predicts:
//
//	sys, _ := xlnand.Open(xlnand.WithDies(4), xlnand.WithBlocks(8))
//	defer sys.Close()
//	q := sys.NewQueue()
//	comps, err := q.Submit(ctx, []xlnand.Request{
//		{Op: xlnand.OpWrite, Die: 0, Block: 0, Page: 0, Data: page},
//		{Op: xlnand.OpRead, Die: 1, Block: 0, Page: 0},
//	})
//
// Every request may carry its own service level (Request.Mode) or pin
// an explicit ECC capability (Request.T), so heterogeneous traffic —
// critical min-UBER writes next to max-read streaming — shares one
// batch without any global mode toggling. Completions carry typed
// errors: errors.Is against ErrUncorrectable, ErrBadAddress and
// ErrClosed, with the full context in *OpError.
//
// # Read recovery
//
// Reads run through a staged recovery ladder: a failing decode re-senses
// the page at calibrated read-reference offsets (WithReadRetry sets the
// budget, Request.Retries overrides it per read), with the reliability
// manager caching the offset that worked per block-wear bucket so later
// reads start there. ReadResult reports the climate through Retries,
// AppliedOffset and the per-stage latency breakdown; every retry is
// charged on the modelled timeline.
//
// # Codec families
//
// The ECC block behind the controller is selectable at Open time:
// WithCodec(CodecBCH) is the paper's adaptive hard-decision BCH (the
// default), WithCodec(CodecLDPC) swaps in a rate-compatible
// quasi-cyclic LDPC codec with normalized min-sum decoding. The LDPC
// family adds the recovery ladder's final rung: once a read's budget
// extends past every hard reference shift, the device performs a
// multi-sense soft read (per-bit confidence from bracketing senses,
// each component sense paying real tR, bus and disturb cost) and the
// soft-input decoder takes over — recovering pages no hard-decision
// path can, at a visible throughput price. WithSoftRetry configures
// that rung; ReadResult.Soft and Completion.SoftSenses report it.
//
// # Migrating from WritePage/ReadPage
//
// The blocking single-page calls remain as convenience wrappers over
// the queue and keep their exact semantics on die 0:
//
//	wr, err := sys.WritePage(b, p, data)   ≡   q.Do(ctx, Request{Op: OpWrite, Block: b, Page: p, Data: data})
//	rd, err := sys.ReadPage(b, p)          ≡   q.Do(ctx, Request{Op: OpRead, Block: b, Page: p})
//
// SelectMode still installs the sub-system default level, but per-request
// Mode overrides replace the old register toggle dance; a capability
// pinned with SetCapability now survives SelectMode and the min-UBER
// write path (previously both silently re-enabled the reliability
// manager).
//
// Open's old Options struct is deprecated but still accepted: it
// implements Option, so Open(Options{Blocks: 4}) keeps compiling.
//
// Evaluate operating points analytically with Evaluate/EvaluateMode; the
// experiment harness regenerating every figure of the paper is exposed
// through RunExperiment and the cmd/flashsim binary.
package xlnand

import (
	"context"
	"fmt"

	"xlnand/internal/controller"
	"xlnand/internal/dispatch"
	"xlnand/internal/ecc"
	"xlnand/internal/nand"
	"xlnand/internal/sim"
	"xlnand/internal/timing"
)

// CodecFamily selects the ECC family behind the controller.
type CodecFamily = ecc.Family

// Codec families for WithCodec.
const (
	// CodecBCH is the paper's adaptive hard-decision BCH codec
	// (capability level = correction capability t in [3, 65]).
	CodecBCH = ecc.FamilyBCH
	// CodecLDPC is the rate-compatible quasi-cyclic LDPC codec with
	// normalized min-sum decoding and a soft-decision read path
	// (capability level = rate index; six levels whose spare footprint
	// spans 72-224 B, an embedded CRC64 included).
	CodecLDPC = ecc.FamilyLDPC
)

// Algorithm selects the NAND program algorithm (the physical-layer knob).
type Algorithm = nand.Algorithm

// Program algorithm values.
const (
	ISPPSV = nand.ISPPSV // standard single-verify ISPP
	ISPPDV = nand.ISPPDV // double-verify ISPP (tighter distributions)
)

// Mode names the paper's cross-layer service levels.
type Mode = sim.Mode

// Service levels (§6.3).
const (
	ModeNominal = sim.ModeNominal
	ModeMinUBER = sim.ModeMinUBER
	ModeMaxRead = sim.ModeMaxRead
)

// config collects Open's resolved parameters.
type config struct {
	blocks        int
	dies          int
	seed          uint64
	targetUBERExp uint32
	manualECC     bool
	readRetry     *int
	softRetry     *int
	family        ecc.Family
	bus           *timing.FlashBus
	hw            *codecHW
	trace         *Tracer
}

type codecHW struct {
	parallelismP int
	chienH       int
	clockHz      float64
}

// Option configures Open.
type Option interface {
	apply(*config)
}

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithBlocks sets the flash blocks per die (default 8).
func WithBlocks(n int) Option { return optionFunc(func(c *config) { c.blocks = n }) }

// WithDies sets the number of NAND dies behind the controller (default
// 1). Array operations proceed in parallel across dies; the flash bus
// and the adaptive codec are shared and serialise.
func WithDies(n int) Option { return optionFunc(func(c *config) { c.dies = n }) }

// WithSeed drives all simulation randomness (default 1). Each die
// derives a decorrelated stream; die 0 matches the single-die behaviour
// for the same seed.
func WithSeed(seed uint64) Option { return optionFunc(func(c *config) { c.seed = seed }) }

// WithTargetUBER sets the reliability target as 10^-exp (default 11, the
// paper's 1e-11).
func WithTargetUBER(exp uint32) Option {
	return optionFunc(func(c *config) { c.targetUBERExp = exp })
}

// WithManualECC disables the reliability manager; use SetCapability to
// pick t explicitly (the capability starts pinned at the worst case).
func WithManualECC() Option { return optionFunc(func(c *config) { c.manualECC = true }) }

// WithReadRetry sets the read-recovery ladder budget: how many re-reads
// at shifted read references a failing decode may trigger before the
// read surfaces ErrUncorrectable (default 4; 0 restores the single-shot
// read path). Each retry pays the full tR + transfer + decode latency
// on the modelled timeline, and ReadResult reports the climate through
// Retries, AppliedOffset and the per-stage latency breakdown.
func WithReadRetry(n int) Option {
	return optionFunc(func(c *config) {
		if n < 0 {
			n = 0
		}
		c.readRetry = &n
	})
}

// WithCodec selects the ECC family the sub-system's shared codec
// implements (default CodecBCH, the paper's adaptive BCH block).
// CodecLDPC swaps in the soft-decision LDPC family: hard decodes run
// normalized min-sum, and once a read's budget extends past the full
// hard-decision recovery ladder (see WithReadRetry), the final rung is
// a multi-sense soft read feeding the soft-input decoder — each
// component sense paying real tR, bus and disturb cost on the modelled
// timeline. Reads always decode at the capability level recovered from
// the stored parity geometry, so the two families never mix within one
// sub-system instance.
func WithCodec(f CodecFamily) Option {
	return optionFunc(func(c *config) { c.family = f })
}

// WithSoftRetry sets the soft-decision rung budget: how many soft-sense
// decode attempts may follow an exhausted hard ladder (default 1; 0
// disables the soft rung). It has no effect on codec families without a
// soft path (BCH).
func WithSoftRetry(n int) Option {
	return optionFunc(func(c *config) {
		if n < 0 {
			n = 0
		}
		c.softRetry = &n
	})
}

// BusConfig describes the flash interface between controller and dies.
type BusConfig struct {
	WidthBits int     // data width (8 in the paper's asynchronous interface)
	ClockHz   float64 // interface cycle rate
}

// WithBus replaces the default 8-bit 33 MHz flash interface — e.g. an
// ONFI-style DDR bus for configurations where die interleaving should
// not saturate on transfers. The analytic evaluations (EvaluateMode,
// ScaleDies) follow the same bus.
func WithBus(b BusConfig) Option {
	return optionFunc(func(c *config) {
		c.bus = &timing.FlashBus{WidthBits: b.WidthBits, ClockHz: b.ClockHz}
	})
}

// WithCodecHW rescales the adaptive codec's micro-architecture: datapath
// width p (bits/cycle), Chien-search parallelism h and clock rate. The
// default is the paper's p=8, h=32 at 80 MHz; wider/faster instances
// keep the shared decoder from bounding multi-die read interleaving.
func WithCodecHW(p, h int, clockHz float64) Option {
	return optionFunc(func(c *config) {
		c.hw = &codecHW{parallelismP: p, chienH: h, clockHz: clockHz}
	})
}

// Options configures Open.
//
// Deprecated: use the functional options (WithBlocks, WithSeed,
// WithTargetUBER, WithManualECC, ...). Options implements Option, so
// existing Open(Options{...}) calls keep working.
type Options struct {
	// Blocks is the number of simulated flash blocks (default 8).
	Blocks int
	// Seed drives all simulation randomness (default 1).
	Seed uint64
	// TargetUBERExp sets the reliability target as 10^-exp (default 11,
	// the paper's 1e-11).
	TargetUBERExp uint32
	// ManualECC disables the reliability manager; use SetCapability to
	// pick t explicitly. The default (false) leaves the manager in
	// charge.
	ManualECC bool
}

func (o Options) apply(c *config) {
	if o.Blocks != 0 {
		c.blocks = o.Blocks
	}
	if o.Seed != 0 {
		c.seed = o.Seed
	}
	if o.TargetUBERExp != 0 {
		c.targetUBERExp = o.TargetUBERExp
	}
	if o.ManualECC {
		c.manualECC = true
	}
}

// Subsystem is an open simulated NAND memory sub-system: one or more
// dies behind a controller with adaptive codec, reliability manager and
// the multi-die dispatcher.
type Subsystem struct {
	disp *dispatch.Dispatcher
	q    *dispatch.Queue // internal queue backing the blocking wrappers
	env  sim.Env
}

// Open builds a simulated sub-system. With no options it gives the
// paper's baseline configuration (one die, 8 blocks, adaptive ECC,
// UBER target 1e-11).
func Open(opts ...Option) (*Subsystem, error) {
	cfg := config{blocks: 8, dies: 1, seed: 1, targetUBERExp: 11}
	for _, o := range opts {
		o.apply(&cfg)
	}
	if cfg.blocks < 0 {
		return nil, fmt.Errorf("xlnand: negative block count %d", cfg.blocks)
	}
	if cfg.dies < 1 {
		return nil, fmt.Errorf("xlnand: die count %d < 1", cfg.dies)
	}
	env := sim.DefaultEnv()
	if cfg.bus != nil {
		if cfg.bus.WidthBits <= 0 || cfg.bus.ClockHz <= 0 {
			return nil, fmt.Errorf("xlnand: invalid bus config %+v", *cfg.bus)
		}
		env.Bus = *cfg.bus
	}
	if cfg.hw != nil {
		if cfg.hw.parallelismP <= 0 || cfg.hw.chienH <= 0 || cfg.hw.clockHz <= 0 {
			return nil, fmt.Errorf("xlnand: invalid codec hardware config %+v", *cfg.hw)
		}
		env.HW.ParallelismP = cfg.hw.parallelismP
		env.HW.ChienParallelismH = cfg.hw.chienH
		env.HW.ClockHz = cfg.hw.clockHz
	}
	target := 1.0
	for i := uint32(0); i < cfg.targetUBERExp; i++ {
		target /= 10
	}
	env.TargetUBER = target

	ctrlCfg := controller.DefaultConfig()
	ctrlCfg.TargetUBERExp = cfg.targetUBERExp
	ctrlCfg.Adaptive = !cfg.manualECC
	ctrlCfg.Bus = env.Bus
	if cfg.readRetry != nil {
		ctrlCfg.MaxRetries = *cfg.readRetry
	}
	if cfg.softRetry != nil {
		ctrlCfg.SoftRetries = *cfg.softRetry
	}

	disp, err := dispatch.New(dispatch.Config{
		Dies:         cfg.dies,
		BlocksPerDie: cfg.blocks,
		Seed:         cfg.seed,
		Env:          env,
		Controller:   ctrlCfg,
		Family:       cfg.family,
		Trace:        cfg.traceProc(),
	})
	if err != nil {
		return nil, err
	}
	if cfg.manualECC {
		disp.PinCapability(disp.Codec().MaxLevel())
	}
	return &Subsystem{disp: disp, q: disp.NewQueue(), env: env}, nil
}

// Close stops the per-die workers. Submissions after Close fail with
// ErrClosed; in-flight operations complete first. Close is idempotent.
func (s *Subsystem) Close() error { return s.disp.Close() }

// PageSize returns the user payload per page in bytes (4096).
func (s *Subsystem) PageSize() int { return s.env.Cal.PageDataBytes }

// Dies returns the number of NAND dies.
func (s *Subsystem) Dies() int { return s.disp.Geometry().Dies }

// Blocks returns the number of flash blocks per die.
func (s *Subsystem) Blocks() int { return s.disp.Geometry().BlocksPerDie }

// PagesPerBlock returns the pages per block.
func (s *Subsystem) PagesPerBlock() int { return s.disp.Geometry().PagesPerBlock }

// SelectMode installs one of the paper's service levels as the
// sub-system default; per-request Mode values override it. A capability
// pinned with SetCapability survives mode switches — call
// SetAdaptive(true) to hand control back to the reliability manager.
func (s *Subsystem) SelectMode(m Mode) error {
	switch m {
	case ModeNominal, ModeMinUBER, ModeMaxRead:
		s.disp.SetDefaultMode(m)
		return nil
	default:
		return fmt.Errorf("xlnand: unknown mode %d", int(m))
	}
}

// Mode returns the currently selected default service level.
func (s *Subsystem) Mode() Mode { return s.disp.DefaultMode() }

// SetAlgorithm pins the program algorithm regardless of the default mode
// (expert path; SelectMode covers the paper's use cases). Cleared by the
// next SelectMode.
func (s *Subsystem) SetAlgorithm(alg Algorithm) { s.disp.SetAlgorithmOverride(alg) }

// SetCapability pins the ECC correction capability, disabling the
// reliability manager until SetAdaptive(true) re-enables it. The pin
// survives SelectMode and the min-UBER write path.
func (s *Subsystem) SetCapability(t int) { s.disp.PinCapability(t) }

// SetAdaptive toggles the reliability manager: true releases any pinned
// capability; false freezes capability selection — at the already-pinned
// value if SetCapability chose one, otherwise at the worst case.
func (s *Subsystem) SetAdaptive(on bool) {
	if on {
		s.disp.Unpin()
	} else if s.disp.PinnedT() < 0 {
		s.disp.PinCapability(s.disp.Codec().MaxLevel())
	}
}

// WriteResult reports a page write.
type WriteResult = controller.WriteResult

// ReadResult reports a page read.
type ReadResult = controller.ReadResult

// WritePage encodes and programs one page on die 0 (data must be
// PageSize bytes) at the default service level. It is a blocking
// wrapper over the queue; batch or cross-die traffic should use Submit.
func (s *Subsystem) WritePage(block, page int, data []byte) (WriteResult, error) {
	comp, err := s.q.Do(context.Background(), dispatch.Request{
		Op: dispatch.OpWrite, Block: block, Page: page, Data: data,
	})
	if comp.Write == nil {
		return WriteResult{}, err
	}
	return *comp.Write, err
}

// ReadPage reads, transfers and decodes one page on die 0.
func (s *Subsystem) ReadPage(block, page int) (ReadResult, error) {
	comp, err := s.q.Do(context.Background(), dispatch.Request{
		Op: dispatch.OpRead, Block: block, Page: page,
	})
	if comp.Read == nil {
		return ReadResult{}, err
	}
	return *comp.Read, err
}

// EraseBlock erases a block on die 0 (incrementing its wear).
func (s *Subsystem) EraseBlock(block int) error {
	_, err := s.q.Do(context.Background(), dispatch.Request{
		Op: dispatch.OpErase, Block: block,
	})
	return err
}

// AgeBlock fast-forwards a die-0 block's program/erase wear to the given
// cycle count, so lifetime behaviour can be studied without replaying
// millions of operations. For other dies use AgeDieBlock.
func (s *Subsystem) AgeBlock(block int, cycles float64) error {
	return s.disp.SetCycles(0, block, cycles)
}

// AgeDieBlock fast-forwards any die's block wear.
func (s *Subsystem) AgeDieBlock(die, block int, cycles float64) error {
	return s.disp.SetCycles(die, block, cycles)
}

// BlockCycles returns a die-0 block's wear.
func (s *Subsystem) BlockCycles(block int) (float64, error) {
	return s.disp.Cycles(0, block)
}

// Uncorrectables returns the number of decode failures observed across
// all dies since Open.
func (s *Subsystem) Uncorrectables() int { return s.disp.Uncorrectables() }

// Controller exposes die 0's controller for advanced use (register-level
// access, reliability-manager inspection). The caller must ensure no
// queue traffic is in flight.
func (s *Subsystem) Controller() *controller.Controller { return s.disp.Controller(0) }

// DieController exposes any die's controller under the same quiescence
// contract as Controller.
func (s *Subsystem) DieController(die int) *controller.Controller {
	return s.disp.Controller(die)
}

// Dispatcher exposes the multi-die dispatcher (geometry, virtual
// timeline, control-plane operations).
func (s *Subsystem) Dispatcher() *dispatch.Dispatcher { return s.disp }
