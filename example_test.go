package xlnand_test

import (
	"fmt"
	"log"

	"xlnand"
)

// The calibrated lifetime RBER model reproduces the paper's Fig. 5
// anchors: ISPP-SV reaches 1e-3 at a million cycles while ISPP-DV stays
// an order of magnitude lower.
func ExampleRBER() {
	fmt.Printf("SV fresh: %.1e\n", xlnand.RBER(xlnand.ISPPSV, 0))
	fmt.Printf("SV EOL:   %.1e\n", xlnand.RBER(xlnand.ISPPSV, 1e6))
	fmt.Printf("DV EOL:   %.1e\n", xlnand.RBER(xlnand.ISPPDV, 1e6))
	// Output:
	// SV fresh: 1.0e-06
	// SV EOL:   1.0e-03
	// DV EOL:   8.4e-05
}

// Sizing the adaptive BCH code per the paper's §6.2: t = 3 suffices at
// the fresh RBER, and the worst case fixes the architecture at t = 65.
func ExampleRequiredT() {
	tMin, err := xlnand.RequiredT(16, 32768, 1e-6, 1e-11, 65)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fresh:", tMin)
	tMax, err := xlnand.RequiredT(16, 32768, 1e-3, 1e-11, 80)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("EOL:", tMax)
	// Output:
	// fresh: 3
	// EOL: 66
}

// The adaptive codec corrects real bit errors in real buffers.
func ExampleNewPageCodec() {
	codec, err := xlnand.NewPageCodec()
	if err != nil {
		log.Fatal(err)
	}
	page := make([]byte, 4096)
	copy(page, "cross-layer flash management")
	cw, err := codec.EncodeCodeword(30, page)
	if err != nil {
		log.Fatal(err)
	}
	cw[0] ^= 0xff // clobber a full byte (8 bit errors)
	n, err := codec.Decode(30, cw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corrected %d bit errors: %q\n", n, cw[:12])
	// Output:
	// corrected 8 bit errors: "cross-layer "
}

// Evaluating the paper's service levels at end of life shows the
// cross-layer trade-off: max-read relaxes the codec from t=65 to t=14.
func ExampleSubsystem_EvaluateMode() {
	sys, err := xlnand.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	nom, err := sys.EvaluateMode(xlnand.ModeNominal, 1e6)
	if err != nil {
		log.Fatal(err)
	}
	fast, err := sys.EvaluateMode(xlnand.ModeMaxRead, 1e6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nominal:  t=%d\n", nom.T)
	fmt.Printf("max-read: t=%d\n", fast.T)
	fmt.Printf("read gain: +%.0f%%\n", 100*(fast.ReadMBps/nom.ReadMBps-1))
	// Output:
	// nominal:  t=65
	// max-read: t=14
	// read gain: +37%
}
