package xlnand

// Benchmarks for the subsystems beyond the figure harness: FTL service
// paths, the socket front end, the stress models and the HV power
// integration.

import (
	"testing"
	"time"

	"xlnand/internal/bch"
	"xlnand/internal/controller"
	"xlnand/internal/dispatch"
	"xlnand/internal/ftl"
	"xlnand/internal/hv"
	"xlnand/internal/nand"
	"xlnand/internal/sim"
)

func newBenchFTL(b *testing.B) *ftl.FTL {
	b.Helper()
	env := sim.DefaultEnv()
	d, err := dispatch.New(dispatch.Config{
		Dies: 1, BlocksPerDie: 6, Seed: 555,
		Env: env, Controller: controller.DefaultConfig(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Close() })
	f, err := ftl.New(d, env, []ftl.PartitionSpec{
		{Name: "data", Blocks: 6, Mode: sim.ModeMaxRead},
	})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

func BenchmarkFTLWriteWithGC(b *testing.B) {
	f := newBenchFTL(b)
	data := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Write("data", i%100, data); err != nil {
			b.Fatal(err)
		}
	}
	p, err := f.Partition("data")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(p.WriteAmplification(), "write-amp")
}

func BenchmarkFTLRead(b *testing.B) {
	f := newBenchFTL(b)
	data := make([]byte, 4096)
	for lpa := 0; lpa < 32; lpa++ {
		if _, err := f.Write("data", lpa, data); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := f.Read("data", i%32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSocketTransaction(b *testing.B) {
	env := sim.DefaultEnv()
	dev := nand.NewDevice(env.Cal, 4, 556)
	codec, err := bch.NewPageCodec()
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := controller.New(dev, bch.NewHWCodec(codec, bch.DefaultHWConfig()), controller.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	sock, err := controller.NewSocket(ctrl, 16)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4096)
	var at time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		block := i % 4
		page := (i / 4) % 64
		if page == 0 && i >= 4 {
			b.StopTimer()
			if err := ctrl.EraseBlock(block); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		res, err := sock.Submit(controller.Tx{
			Kind: controller.TxWrite, Arrival: at, Block: block, Page: page, Data: data,
		})
		if err != nil {
			b.Fatal(err)
		}
		at = res.Complete
	}
	b.ReportMetric(sock.Utilisation(), "utilisation")
}

func BenchmarkStressedRBER(b *testing.B) {
	cal := nand.DefaultCalibration()
	s := nand.DefaultStressConfig()
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc += cal.StressedRBER(s, nand.ISPPSV, 1e4, float64(i%100000), float64(i%5000))
	}
	_ = acc
}

func BenchmarkHVPowerIntegration(b *testing.B) {
	pc := hv.DefaultPowerConfig()
	cal := nand.DefaultCalibration()
	tl, err := hv.SyntheticTimeline(cal, nand.ISPPDV, nand.L3, 1e4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pc.Integrate(tl); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionFigures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment("ext-retention", 1); err != nil {
			b.Fatal(err)
		}
		if _, err := RunExperiment("ext-disturb", 1); err != nil {
			b.Fatal(err)
		}
	}
}
