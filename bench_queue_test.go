package xlnand

// Benchmarks for the asynchronous queue and the multi-die dispatcher:
// batch read throughput scaling with die count, cross-checked against
// the ScaleDies analytic pipeline. Two metrics are reported per die
// count: model-MB/s (measured on the dispatcher's virtual timeline) and
// model-pred-MB/s (the ScaleDies steady-state prediction); the wall
// ns/op additionally tracks the real simulation cost of a 64-page batch.

import (
	"context"
	"testing"
	"time"
)

func benchQueueReadDies(b *testing.B, dies int) {
	sys, err := Open(fastFabric(dies)...)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	q := sys.NewQueue()
	ctx := context.Background()
	const pages = 64
	page := pageOf(60, sys.PageSize())

	var writes, reads, refresh []Request
	for i := 0; i < pages; i++ {
		writes = append(writes, WriteRequest(i%dies, 0, i/dies, page))
		reads = append(reads, ReadRequest(i%dies, 0, i/dies))
	}
	for d := 0; d < dies; d++ {
		refresh = append(refresh, EraseRequest(d, 0))
	}
	refresh = append(refresh, writes...)
	mustSubmit := func(rs []Request) []Completion {
		comps, err := q.Submit(ctx, rs)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range comps {
			if c.Err != nil {
				b.Fatal(c.Err)
			}
		}
		return comps
	}
	mustSubmit(writes)

	b.SetBytes(int64(pages * sys.PageSize()))
	b.ResetTimer()
	var mbps float64
	for i := 0; i < b.N; i++ {
		if i > 0 && i%32 == 0 {
			// Heal accumulated read disturb so long runs stay decodable.
			b.StopTimer()
			mustSubmit(refresh)
			b.StartTimer()
		}
		comps := mustSubmit(reads)
		var start, finish time.Duration
		for j, c := range comps {
			if j == 0 || c.Start < start {
				start = c.Start
			}
			if c.Finish > finish {
				finish = c.Finish
			}
		}
		mbps = float64(pages*sys.PageSize()) / (finish - start).Seconds() / 1e6
	}
	b.StopTimer()
	b.ReportMetric(mbps, "model-MB/s")
	pred, err := sys.ScaleDies(ModeNominal, 0, dies)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(pred.ReadMBps, "model-pred-MB/s")
}

func BenchmarkQueueReadDies1(b *testing.B) { benchQueueReadDies(b, 1) }
func BenchmarkQueueReadDies2(b *testing.B) { benchQueueReadDies(b, 2) }
func BenchmarkQueueReadDies4(b *testing.B) { benchQueueReadDies(b, 4) }
func BenchmarkQueueReadDies8(b *testing.B) { benchQueueReadDies(b, 8) }

// BenchmarkQueueMixedBatch measures the real (wall-clock) cost of
// dispatching a 64-request mixed batch across four dies — the overhead
// budget of the submission/completion machinery itself.
func BenchmarkQueueMixedBatch(b *testing.B) {
	sys, err := Open(WithDies(4), WithBlocks(2), WithSeed(21))
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	q := sys.NewQueue()
	ctx := context.Background()
	page := pageOf(61, sys.PageSize())
	var seed []Request
	for d := 0; d < 4; d++ {
		for p := 0; p < 8; p++ {
			seed = append(seed, WriteRequest(d, 0, p, page))
		}
	}
	if _, err := q.Submit(ctx, seed); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(64 * int64(sys.PageSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var batch []Request
		for d := 0; d < 4; d++ {
			for p := 0; p < 8; p++ {
				batch = append(batch, ReadRequest(d, 0, p))
				batch = append(batch, WriteRequest(d, 1, p, page))
			}
		}
		comps, err := q.Submit(ctx, batch)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range comps {
			if c.Err != nil {
				b.Fatal(c.Err)
			}
		}
		b.StopTimer()
		for d := 0; d < 4; d++ {
			if _, err := q.Do(ctx, EraseRequest(d, 1)); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
	}
}
